#include "sim/sharded_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace dynamoth::sim {
namespace {

/// Minimal shard: records boundary deliveries as (time, src, payload) rows
/// and remembers which thread built it.
class TestShard : public Shard {
 public:
  explicit TestShard(std::size_t id) : id_(id), built_on_(std::this_thread::get_id()) {}

  Simulator& simulator() override { return sim_; }

  void on_boundary(std::size_t src, const BoundaryEvent& ev) override {
    sim_.schedule_at(ev.at, [this, src, ev] {
      log_.push_back({sim_.now(), src, ev.b});
    });
  }

  struct Row {
    SimTime at;
    std::size_t src;
    std::uint64_t payload;
    friend bool operator==(const Row&, const Row&) = default;
  };

  std::size_t id_;
  std::thread::id built_on_;
  Simulator sim_;
  std::vector<Row> log_;
};

TEST(ShardedEngine, SingleShardRunsInlineOnCallerThread) {
  ShardedEngine eng({.shards = 1, .lookahead = 0});
  eng.build([](std::size_t id) { return std::make_unique<TestShard>(id); });

  auto& s0 = static_cast<TestShard&>(eng.shard(0));
  EXPECT_EQ(s0.built_on_, std::this_thread::get_id());

  int fired = 0;
  s0.sim_.schedule_at(millis(5), [&] { ++fired; });
  eng.run_until(millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s0.sim_.now(), millis(10));
  EXPECT_EQ(eng.stats().boundary_events, 0u);
}

TEST(ShardedEngine, BuildAndVisitRunOnTheShardThread) {
  ShardedEngine eng({.shards = 3, .lookahead = millis(1)});
  eng.build([](std::size_t id) { return std::make_unique<TestShard>(id); });

  auto& s0 = static_cast<TestShard&>(eng.shard(0));
  auto& s1 = static_cast<TestShard&>(eng.shard(1));
  auto& s2 = static_cast<TestShard&>(eng.shard(2));
  EXPECT_EQ(s0.built_on_, std::this_thread::get_id());
  EXPECT_NE(s1.built_on_, std::this_thread::get_id());
  EXPECT_NE(s2.built_on_, s1.built_on_);

  for (std::size_t i = 0; i < 3; ++i) {
    eng.visit(i, [&](Shard& s) {
      EXPECT_EQ(std::this_thread::get_id(), static_cast<TestShard&>(s).built_on_);
    });
  }
}

TEST(ShardedEngine, CrossShardPostDeliversAtPostedTime) {
  constexpr std::size_t kShards = 3;
  ShardedEngine eng({.shards = kShards, .lookahead = millis(10)});
  eng.build([&eng](std::size_t id) {
    auto shard = std::make_unique<TestShard>(id);
    TestShard* raw = shard.get();
    // At t = 1ms each shard posts its id to its clockwise neighbour,
    // arriving one lookahead later.
    raw->sim_.schedule_at(millis(1), [&eng, raw] {
      eng.post(raw->id_, (raw->id_ + 1) % kShards,
               BoundaryEvent{.at = raw->sim_.now() + millis(10), .b = raw->id_});
    });
    return shard;
  });

  eng.run_until(millis(100));

  for (std::size_t i = 0; i < kShards; ++i) {
    auto& s = static_cast<TestShard&>(eng.shard(i));
    const std::size_t src = (i + kShards - 1) % kShards;
    ASSERT_EQ(s.log_.size(), 1u) << "shard " << i;
    EXPECT_EQ(s.log_[0], (TestShard::Row{millis(11), src, src}));
    EXPECT_EQ(s.sim_.now(), millis(100));
  }
  EXPECT_EQ(eng.stats().boundary_events, kShards);
}

TEST(ShardedEngine, TokenRelayHopsAcrossManyEpochs) {
  // A token circles the ring: each arrival immediately posts the next hop at
  // now + lookahead. Every hop forces a fresh epoch, so this exercises the
  // drain -> reduce -> run cycle end to end.
  constexpr std::size_t kShards = 4;
  constexpr int kHops = 25;
  struct RelayShard : TestShard {
    RelayShard(std::size_t id, ShardedEngine* eng) : TestShard(id), eng_(eng) {}
    void on_boundary(std::size_t src, const BoundaryEvent& ev) override {
      sim_.schedule_at(ev.at, [this, src, ev] {
        log_.push_back({sim_.now(), src, ev.b});
        if (ev.b > 0) {
          eng_->post(id_, (id_ + 1) % kShards,
                     BoundaryEvent{.at = sim_.now() + millis(5), .b = ev.b - 1});
        }
      });
    }
    ShardedEngine* eng_;
  };

  ShardedEngine eng({.shards = kShards, .lookahead = millis(5)});
  eng.build([&eng](std::size_t id) {
    auto shard = std::make_unique<RelayShard>(id, &eng);
    RelayShard* raw = shard.get();
    if (id == 0) {
      raw->sim_.schedule_at(0, [&eng, raw] {
        eng.post(0, 1, BoundaryEvent{.at = millis(5), .b = kHops});
      });
    }
    return shard;
  });

  eng.run_until(seconds(1));

  int total = 0;
  for (std::size_t i = 0; i < kShards; ++i) {
    auto& s = static_cast<TestShard&>(eng.shard(i));
    for (const auto& row : s.log_) {
      // Hop h (counting down from kHops) lands at h-th multiple of 5 ms.
      EXPECT_EQ(row.at, millis(5) * (kHops - static_cast<int>(row.payload) + 1));
      ++total;
    }
  }
  EXPECT_EQ(total, kHops + 1);
  EXPECT_EQ(eng.stats().boundary_events, static_cast<std::uint64_t>(kHops + 1));
  EXPECT_GE(eng.stats().epochs, static_cast<std::uint64_t>(kHops));
}

TEST(ShardedEngine, MergeOrderIsSourceShardThenFifo) {
  // Shards 1..3 all post to shard 0 with the SAME delivery time; shard 2
  // posts twice. The merged firing order must be (src ascending, FIFO
  // within src) regardless of thread scheduling.
  ShardedEngine eng({.shards = 4, .lookahead = millis(1)});
  eng.build([&eng](std::size_t id) {
    auto shard = std::make_unique<TestShard>(id);
    TestShard* raw = shard.get();
    if (id > 0) {
      raw->sim_.schedule_at(0, [&eng, raw] {
        eng.post(raw->id_, 0, BoundaryEvent{.at = millis(2), .b = raw->id_ * 10});
        if (raw->id_ == 2) {
          eng.post(raw->id_, 0, BoundaryEvent{.at = millis(2), .b = 21});
        }
      });
    }
    return shard;
  });

  eng.run_until(millis(10));

  auto& s0 = static_cast<TestShard&>(eng.shard(0));
  ASSERT_EQ(s0.log_.size(), 4u);
  EXPECT_EQ(s0.log_[0], (TestShard::Row{millis(2), 1, 10}));
  EXPECT_EQ(s0.log_[1], (TestShard::Row{millis(2), 2, 20}));
  EXPECT_EQ(s0.log_[2], (TestShard::Row{millis(2), 2, 21}));
  EXPECT_EQ(s0.log_[3], (TestShard::Row{millis(2), 3, 30}));
}

TEST(ShardedEngine, EpochFastForwardSkipsIdleGaps) {
  // Ten events spaced one second apart with a 1 ms lookahead: the next-event
  // reduction must jump epoch ends to the work, not crawl in 1 ms steps
  // (which would need ~10000 epochs).
  ShardedEngine eng({.shards = 2, .lookahead = millis(1)});
  eng.build([](std::size_t id) {
    auto shard = std::make_unique<TestShard>(id);
    TestShard* raw = shard.get();
    for (int k = 1; k <= 10; ++k) {
      raw->sim_.schedule_at(seconds(k), [raw] { raw->log_.push_back({raw->sim_.now(), 0, 0}); });
    }
    return shard;
  });

  eng.run_until(seconds(11));

  EXPECT_EQ(static_cast<TestShard&>(eng.shard(0)).log_.size(), 10u);
  EXPECT_EQ(static_cast<TestShard&>(eng.shard(1)).log_.size(), 10u);
  EXPECT_LE(eng.stats().epochs, 50u);
}

// Workload used by the determinism tests: every shard runs a seeded random
// mix of local events and cross-posts, then the full logs are compared.
std::vector<std::vector<TestShard::Row>> run_random_workload(std::size_t shards,
                                                             std::uint64_t seed,
                                                             bool chunked) {
  struct RandomShard : TestShard {
    RandomShard(std::size_t id, ShardedEngine* eng, std::uint64_t seed)
        : TestShard(id), eng_(eng), rng_(Rng(seed).fork(id)) {}
    void tick() {
      log_.push_back({sim_.now(), id_, 0xFFFF});
      if (rng_.chance(0.6)) {
        const auto dst = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(eng_->shard_count()) - 1));
        eng_->post(id_, dst,
                   BoundaryEvent{.at = sim_.now() + millis(3) +
                                       millis(rng_.uniform_int(0, 7)),
                                 .b = rng_.next() % 1000});
      }
      if (hops_-- > 0) {
        sim_.schedule_after(millis(rng_.uniform_int(1, 9)), [this] { tick(); });
      }
    }
    ShardedEngine* eng_;
    Rng rng_;
    int hops_ = 40;
  };

  ShardedEngine eng({.shards = shards, .lookahead = millis(3)});
  eng.build([&eng, seed](std::size_t id) {
    auto shard = std::make_unique<RandomShard>(id, &eng, seed);
    RandomShard* raw = shard.get();
    raw->sim_.schedule_at(0, [raw] { raw->tick(); });
    return shard;
  });

  if (chunked) {
    eng.run_until(millis(100));
    eng.run_until(millis(350));
    eng.run_until(seconds(2));
  } else {
    eng.run_until(seconds(2));
  }

  std::vector<std::vector<TestShard::Row>> logs;
  for (std::size_t i = 0; i < shards; ++i) {
    logs.push_back(static_cast<TestShard&>(eng.shard(i)).log_);
  }
  return logs;
}

TEST(ShardedEngine, TwoRunsWithSameSeedAndShardCountAreIdentical) {
  const auto a = run_random_workload(4, 99, /*chunked=*/false);
  const auto b = run_random_workload(4, 99, /*chunked=*/false);
  EXPECT_EQ(a, b);
}

TEST(ShardedEngine, ChunkedRunMatchesSingleRun) {
  const auto whole = run_random_workload(3, 7, /*chunked=*/false);
  const auto chunked = run_random_workload(3, 7, /*chunked=*/true);
  EXPECT_EQ(whole, chunked);
}

TEST(ShardedEngine, SelfPostInSingleShardModeDeliversOnNextChunk) {
  // K = 1 still supports post(): the mailbox drains at the next run_until
  // call, so chunked drivers behave the same with and without threads.
  ShardedEngine eng({.shards = 1, .lookahead = 0});
  eng.build([&eng](std::size_t id) {
    auto shard = std::make_unique<TestShard>(id);
    TestShard* raw = shard.get();
    raw->sim_.schedule_at(millis(1), [&eng, raw] {
      eng.post(0, 0, BoundaryEvent{.at = millis(4), .b = 42});
    });
    return shard;
  });

  eng.run_until(millis(2));  // posts; mailbox not yet drained
  auto& s0 = static_cast<TestShard&>(eng.shard(0));
  EXPECT_TRUE(s0.log_.empty());
  eng.run_until(millis(10));  // drains, schedules at 4 ms, fires
  ASSERT_EQ(s0.log_.size(), 1u);
  EXPECT_EQ(s0.log_[0], (TestShard::Row{millis(4), 0, 42}));
}

}  // namespace
}  // namespace dynamoth::sim
