#include "placement/policy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "placement/bounded_load.h"
#include "placement/greedy.h"
#include "placement/maglev.h"
#include "placement/maglev_table.h"
#include "placement/peak_ewma.h"
#include "fake_round_ops.h"

namespace dynamoth::placement {
namespace {

using test::FakeRoundOps;

// ---- factory / naming ----

TEST(PolicyFactory, BuildsEveryKindWithMatchingName) {
  for (PolicyKind kind : {PolicyKind::kGreedy, PolicyKind::kBoundedLoad, PolicyKind::kPeakEwma,
                          PolicyKind::kMaglev}) {
    PolicyConfig config;
    config.kind = kind;
    const auto policy = make_policy(config);
    ASSERT_NE(policy, nullptr);
    EXPECT_STREQ(policy->name(), to_string(kind));
  }
}

TEST(PolicyFactory, ParseRoundTripsEveryName) {
  for (PolicyKind kind : {PolicyKind::kGreedy, PolicyKind::kBoundedLoad, PolicyKind::kPeakEwma,
                          PolicyKind::kMaglev}) {
    PolicyKind parsed{};
    ASSERT_TRUE(parse_policy_kind(to_string(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  PolicyKind parsed{};
  EXPECT_FALSE(parse_policy_kind("round-robin", &parsed));
}

TEST(PolicyFactory, ParamsDescribeTunables) {
  PolicyConfig config;
  config.kind = PolicyKind::kBoundedLoad;
  config.bounded_epsilon = 0.5;
  EXPECT_EQ(make_policy(config)->params(), "eps=0.50,vnodes=64");
  config.kind = PolicyKind::kPeakEwma;
  config.ewma_decay_s = 45;
  EXPECT_EQ(make_policy(config)->params(), "decay=45s");
  config.kind = PolicyKind::kMaglev;
  EXPECT_EQ(make_policy(config)->params(), "table=2039");
  config.kind = PolicyKind::kGreedy;
  EXPECT_EQ(make_policy(config)->params(), "");
}

// ---- Maglev table ----

TEST(MaglevTable, LookupIsDeterministicAndCoversAllBackends) {
  MaglevTable a, b;
  const std::vector<ServerId> servers = {3, 7, 11, 19};
  a.build(servers);
  b.build({19, 11, 7, 3});  // order-insensitive
  std::set<ServerId> seen;
  for (int i = 0; i < 500; ++i) {
    const Channel c = "c" + std::to_string(i);
    EXPECT_EQ(a.lookup(c), b.lookup(c));
    seen.insert(a.lookup(c));
  }
  EXPECT_EQ(seen.size(), servers.size());
}

TEST(MaglevTable, TableSplitsEvenly) {
  MaglevTable table(2039);
  table.build({1, 2, 3, 4, 5});
  std::map<ServerId, int> slots;
  for (ServerId s : table.entries()) slots[s]++;
  ASSERT_EQ(slots.size(), 5u);
  for (const auto& [server, count] : slots) {
    // Maglev bounds the spread to within ~1% of fair share at M >> N; be
    // generous and require within 20%.
    EXPECT_GT(count, 2039 / 5 * 0.8) << "server " << server;
    EXPECT_LT(count, 2039 / 5 * 1.2) << "server " << server;
  }
}

TEST(MaglevTable, RemovalDisruptionIsNearMinimal) {
  // The Maglev guarantee: when a backend leaves, (almost) only the keys it
  // owned move. Measure collateral movement among keys of surviving
  // backends; the paper's construction keeps it to a few percent.
  MaglevTable table(2039);
  table.build({1, 2, 3, 4, 5});
  const int keys = 8000;
  std::map<Channel, ServerId> before;
  for (int i = 0; i < keys; ++i) {
    const Channel c = "k" + std::to_string(i);
    before[c] = table.lookup(c);
  }
  table.build({1, 2, 4, 5});  // backend 3 leaves
  int victim_keys = 0, victim_moved = 0, collateral = 0, survivors = 0;
  for (const auto& [c, old] : before) {
    const ServerId now = table.lookup(c);
    if (old == 3u) {
      ++victim_keys;
      if (now != 3u) ++victim_moved;
    } else {
      ++survivors;
      if (now != old) ++collateral;
    }
  }
  EXPECT_EQ(victim_moved, victim_keys);  // every orphaned key re-homed
  EXPECT_LT(static_cast<double>(collateral) / survivors, 0.05)
      << collateral << " of " << survivors << " surviving keys moved";
}

TEST(MaglevTable, AdditionDisruptionIsNearMinimal) {
  MaglevTable table(2039);
  table.build({1, 2, 3, 4});
  const int keys = 8000;
  std::map<Channel, ServerId> before;
  for (int i = 0; i < keys; ++i) {
    const Channel c = "k" + std::to_string(i);
    before[c] = table.lookup(c);
  }
  table.build({1, 2, 3, 4, 5});
  int moved_to_new = 0, shuffled = 0;
  for (const auto& [c, old] : before) {
    const ServerId now = table.lookup(c);
    if (now == old) continue;
    if (now == 5u) ++moved_to_new;
    else ++shuffled;
  }
  // ~1/5 of keys should land on the newcomer; cross-survivor shuffles stay
  // marginal.
  EXPECT_GT(moved_to_new, keys / 10);
  EXPECT_LT(moved_to_new, keys / 3);
  EXPECT_LT(static_cast<double>(shuffled) / keys, 0.05);
}

TEST(MaglevTableDeathTest, NonPrimeTableSizeAborts) {
  EXPECT_DEATH(MaglevTable(2040), "");
}

TEST(MaglevTable, EmptyBuildClearsAndSingleBackendOwnsAll) {
  MaglevTable table(251);
  table.build({42});
  for (int i = 0; i < 50; ++i) EXPECT_EQ(table.lookup("c" + std::to_string(i)), 42u);
  table.build({});
  EXPECT_TRUE(table.empty());
}

// ---- greedy through the interface ----

TEST(GreedyPolicy, RelievesHotServerByMigratingBusiestChannels) {
  FakeRoundOps ops;
  ops.add_server(1, 1000, true);
  ops.add_server(2, 1000, true);
  // Server 1 at LR 0.9 (past lr_high), server 2 idle.
  ops.mutable_plan().set_entry("a", core::PlanEntry{{1}, core::ReplicationMode::kNone, 1});
  ops.mutable_plan().set_entry("b", core::PlanEntry{{1}, core::ReplicationMode::kNone, 1});
  ops.offer("a", 500);
  ops.offer("b", 400);

  GreedyPolicy greedy;
  greedy.system_rebalance(ops, true);

  EXPECT_TRUE(ops.overloaded());
  EXPECT_GE(ops.migrations(), 1u);
  EXPECT_EQ(ops.kind(), core::RebalanceKind::kHighLoad);
  // The busiest channel lands on the idle server.
  ASSERT_FALSE(ops.moves().empty());
  EXPECT_EQ(ops.moves().front().channel, "a");
  EXPECT_EQ(ops.moves().front().to, std::vector<ServerId>{2u});
}

TEST(GreedyPolicy, RequestsSpawnWhenMigrationIsStuck) {
  FakeRoundOps ops;
  ops.add_server(1, 1000, true);  // alone and overloaded
  ops.mutable_plan().set_entry("a", core::PlanEntry{{1}, core::ReplicationMode::kNone, 1});
  ops.offer("a", 900);
  ops.allow_spawn(9, 1000);

  GreedyPolicy greedy;
  greedy.system_rebalance(ops, true);
  EXPECT_EQ(ops.spawns(), 1u);
}

TEST(GreedyPolicy, DrainsIdleNonRingServer) {
  FakeRoundOps ops;
  ops.add_server(1, 1000, true);
  ops.add_server(2, 1000, false);  // rented, nearly idle fleet
  ops.mutable_plan().set_entry("a", core::PlanEntry{{2}, core::ReplicationMode::kNone, 1});
  ops.offer("a", 100);  // avg LR 0.05 < lr_low

  GreedyPolicy greedy;
  greedy.system_rebalance(ops, true);
  EXPECT_EQ(ops.drained(), 2u);
  EXPECT_EQ(ops.kind(), core::RebalanceKind::kLowLoad);
}

// ---- bounded load ----

TEST(BoundedLoadPolicy, EnforcesCapOnSkewedLoad) {
  PolicyConfig config;
  config.kind = PolicyKind::kBoundedLoad;
  config.bounded_epsilon = 0.25;
  BoundedLoadPolicy policy(config);

  FakeRoundOps ops;
  ops.add_server(1, 10000, true);
  ops.add_server(2, 10000, true);
  // All load piled on server 1 (but below lr_high: the *bound*, not
  // pressure, must force the spread).
  for (int i = 0; i < 8; ++i) {
    ops.mutable_plan().set_entry("c" + std::to_string(i),
                                 core::PlanEntry{{1}, core::ReplicationMode::kNone, 1});
    ops.offer("c" + std::to_string(i), 500);
  }

  policy.system_rebalance(ops, true);

  const auto& stats = policy.last_round();
  ASSERT_TRUE(stats.ran);
  EXPECT_FALSE(stats.overflow);
  for (const auto& [server, assigned] : stats.assigned) {
    EXPECT_LE(assigned, stats.cap.at(server) + 1e-9) << "server " << server;
  }
  EXPECT_GE(ops.moves().size(), 1u);  // something was forwarded off server 1
}

TEST(BoundedLoadPolicy, StickyWhenLoadIsBalanced) {
  PolicyConfig config;
  config.kind = PolicyKind::kBoundedLoad;
  BoundedLoadPolicy policy(config);

  FakeRoundOps ops;
  ops.add_server(1, 10000, true);
  ops.add_server(2, 10000, true);
  for (int i = 0; i < 8; ++i) ops.offer("c" + std::to_string(i), 100);
  policy.system_rebalance(ops, true);
  const std::size_t first_round_moves = ops.moves().size();

  // Same offered load again: placements must not churn.
  ops.reset_round();
  for (int i = 0; i < 8; ++i) ops.offer("c" + std::to_string(i), 100);
  policy.system_rebalance(ops, true);
  EXPECT_EQ(ops.moves().size(), 0u) << "round 1 moved " << first_round_moves
                                    << ", round 2 must be sticky";
}

TEST(BoundedLoadPolicy, OverflowFlagsAndSpawns) {
  PolicyConfig config;
  config.kind = PolicyKind::kBoundedLoad;
  BoundedLoadPolicy policy(config);

  FakeRoundOps ops;
  ops.mutable_limits().lr_high = 0.85;
  ops.add_server(1, 1000, true);
  ops.add_server(2, 1000, true);
  // One channel alone exceeds every cap ((1+eps)*total/2 < total).
  ops.mutable_plan().set_entry("big", core::PlanEntry{{1}, core::ReplicationMode::kNone, 1});
  ops.offer("big", 1800);
  ops.offer("small", 10);
  ops.allow_spawn(9, 1000);

  policy.system_rebalance(ops, true);
  EXPECT_TRUE(policy.last_round().overflow);
  EXPECT_TRUE(ops.overloaded());
  EXPECT_EQ(ops.spawns(), 1u);
}

// ---- peak-ewma ----

TEST(PeakEwmaPolicy, ScoreDecaysExponentiallyAfterSpike) {
  PolicyConfig config;
  config.kind = PolicyKind::kPeakEwma;
  config.ewma_decay_s = 30;
  PeakEwmaPolicy policy(config);

  FakeRoundOps ops;
  ops.add_server(1, 1000, true);
  ops.add_server(2, 1000, true);
  ops.mutable_plan().set_entry("a", core::PlanEntry{{1}, core::ReplicationMode::kNone, 1});
  ops.offer("a", 600);  // LR 0.6 spike on server 1
  policy.system_rebalance(ops, true);
  EXPECT_NEAR(policy.score(1), 0.6, 1e-9);

  // Load vanishes; one decay constant later the peak is down to 1/e.
  ops.clear_channel("a");
  ops.advance(seconds(30));
  policy.system_rebalance(ops, true);
  EXPECT_NEAR(policy.score(1), 0.6 * std::exp(-1.0), 1e-6);
  EXPECT_GT(policy.score(1), 0.0);  // remembered, not forgotten
}

TEST(PeakEwmaPolicy, MigratesTowardColdestPeakServer) {
  PolicyConfig config;
  config.kind = PolicyKind::kPeakEwma;
  PeakEwmaPolicy policy(config);

  FakeRoundOps ops;
  ops.add_server(1, 1000, true);
  ops.add_server(2, 1000, true);
  ops.add_server(3, 1000, true);
  // Warm round: server 2 runs hot (peak sticks), server 3 stays cold.
  ops.mutable_plan().set_entry("warm", core::PlanEntry{{2}, core::ReplicationMode::kNone, 1});
  ops.offer("warm", 700);
  policy.system_rebalance(ops, true);

  // Next round: server 2's load is gone (instantaneous), server 1 overloads.
  ops.clear_channel("warm");
  ops.advance(seconds(1));
  ops.mutable_plan().set_entry("hot1", core::PlanEntry{{1}, core::ReplicationMode::kNone, 1});
  ops.mutable_plan().set_entry("hot2", core::PlanEntry{{1}, core::ReplicationMode::kNone, 1});
  ops.offer("hot1", 500);
  ops.offer("hot2", 400);
  ops.reset_round();
  policy.system_rebalance(ops, true);

  // The decayed peak still marks server 2 as recently hot, so the busiest
  // channel must land on server 3 even though 2 and 3 are equally idle now.
  ASSERT_FALSE(ops.moves().empty());
  EXPECT_EQ(ops.moves().front().channel, "hot1");
  EXPECT_EQ(ops.moves().front().to, std::vector<ServerId>{3u});
}

// ---- maglev policy (through the interface) ----

TEST(MaglevPolicy, PinsChannelsToTableOwnersOnMembershipChange) {
  PolicyConfig config;
  config.kind = PolicyKind::kMaglev;
  MaglevPolicy policy(config);

  FakeRoundOps ops;
  ops.add_server(1, 1000, true);
  ops.add_server(2, 1000, true);
  for (int i = 0; i < 12; ++i) ops.offer("c" + std::to_string(i), 10);
  policy.system_rebalance(ops, true);  // first build: membership {} -> {1,2}

  for (int i = 0; i < 12; ++i) {
    const Channel c = "c" + std::to_string(i);
    const core::PlanEntry entry = ops.plan().resolve(c, ops.base_ring());
    EXPECT_EQ(entry.servers, std::vector<ServerId>{policy.table().lookup(c)}) << c;
  }

  // Stable membership, stable load: no further churn.
  ops.reset_round();
  for (int i = 0; i < 12; ++i) ops.offer("c" + std::to_string(i), 10);
  policy.system_rebalance(ops, true);
  EXPECT_TRUE(ops.moves().empty());
}

// ---- emergency homing ----

TEST(EmergencyHome, DefaultPicksLeastPressuredServer) {
  GreedyPolicy greedy;
  FakeRoundOps ops;
  ops.add_server(1, 1000, true);
  ops.add_server(2, 1000, true);
  ops.mutable_plan().set_entry("x", core::PlanEntry{{1}, core::ReplicationMode::kNone, 1});
  ops.offer("x", 500);
  EXPECT_EQ(greedy.emergency_home(ops, "orphan"), 2u);
}

TEST(EmergencyHome, BoundedLoadWalksItsRing) {
  PolicyConfig config;
  config.kind = PolicyKind::kBoundedLoad;
  BoundedLoadPolicy policy(config);
  FakeRoundOps ops;
  ops.add_server(1, 1000, true);
  ops.add_server(2, 1000, true);
  for (int i = 0; i < 4; ++i) ops.offer("c" + std::to_string(i), 10);
  policy.system_rebalance(ops, true);  // syncs the internal ring
  const ServerId home = policy.emergency_home(ops, "orphan");
  EXPECT_TRUE(home == 1u || home == 2u);
}

}  // namespace
}  // namespace dynamoth::placement
