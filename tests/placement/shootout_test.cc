// The ISSUE-7 acceptance shoot-out: on the Figure-7 elasticity workload,
// consistent hashing with bounded loads must deliver strictly lower plan
// churn (channel moves across published plans) than the paper's greedy
// Algorithm 2, at equal-or-better p99 latency. Sticky hash-derived
// placements are the whole point of the bounded-load policy; this pins the
// claim to a reproducible experiment instead of the bench's eyeball table.
#include <gtest/gtest.h>

#include <cstdint>

#include "mammoth/experiments.h"
#include "placement/policy.h"

namespace dynamoth::mammoth::exp {
namespace {

std::uint64_t count_moves(const obs::RebalanceAuditLog& audit) {
  std::uint64_t n = 0;
  for (const auto& rec : audit.records()) n += rec.moves.size();
  return n;
}

// The fig_placement --smoke Figure-7 cycle: ramp to 400, drop to 100, climb
// back — elasticity stresses both spill (ramp) and scale-down (drop).
GameExperimentConfig fig7_smoke() {
  GameExperimentConfig config = default_game_experiment();
  config.seed = 99;
  config.schedule = {{seconds(0), 50},  {seconds(40), 400},  {seconds(60), 400},
                     {seconds(70), 100}, {seconds(100), 100}, {seconds(130), 300}};
  config.duration = seconds(140);
  config.sample_interval = seconds(10);
  return config;
}

TEST(PlacementShootout, BoundedLoadChurnsLessThanGreedyAtEqualOrBetterP99) {
  GameExperimentConfig greedy_config = fig7_smoke();
  greedy_config.dynamoth.placement.kind = placement::PolicyKind::kGreedy;
  const GameExperimentResult greedy = run_game_experiment(greedy_config);

  GameExperimentConfig bounded_config = fig7_smoke();
  bounded_config.dynamoth.placement.kind = placement::PolicyKind::kBoundedLoad;
  const GameExperimentResult bounded = run_game_experiment(bounded_config);

  const std::uint64_t greedy_moves = count_moves(greedy.audit);
  const std::uint64_t bounded_moves = count_moves(bounded.audit);
  ASSERT_GT(greedy_moves, 0u);  // the workload must actually force rebalances

  EXPECT_LT(bounded_moves, greedy_moves)
      << "bounded-load churned " << bounded_moves << " moves vs greedy " << greedy_moves;
  ASSERT_GT(greedy.rtt_us.count(), 0u);
  ASSERT_GT(bounded.rtt_us.count(), 0u);
  EXPECT_LE(bounded.rtt_us.percentile(99), greedy.rtt_us.percentile(99))
      << "bounded-load p99 " << bounded.rtt_us.percentile(99) << "us vs greedy "
      << greedy.rtt_us.percentile(99) << "us";
}

}  // namespace
}  // namespace dynamoth::mammoth::exp
