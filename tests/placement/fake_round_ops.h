// A self-contained RoundOps for exercising placement policies without a
// cluster: the test owns the plan, the roster and the per-channel rates, and
// drives rounds by hand. apply() mirrors the balancer's estimated-load
// bookkeeping (remove the channel's load everywhere, credit the new owners).
#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "placement/policy.h"

namespace dynamoth::placement::test {

class FakeRoundOps final : public RoundOps {
 public:
  explicit FakeRoundOps(int ring_vnodes = 64) : base_ring_(ring_vnodes) {}

  // ---- test setup ----
  void add_server(ServerId id, double capacity, bool on_base_ring) {
    capacity_[id] = capacity;
    est_out_[id] = 0;
    if (on_base_ring) base_ring_.add_server(id);
  }
  void remove_server(ServerId id) {
    capacity_.erase(id);
    est_out_.erase(id);
    rates_.erase(id);
  }
  /// Sets `channel`'s offered load and charges it to its currently resolved
  /// owner (call once per channel per round, before system_rebalance).
  void offer(const Channel& channel, double rate) {
    const Channel& name = *names_.insert(channel).first;
    const core::PlanEntry entry = plan_.resolve(name, base_ring_);
    clear_channel(name);
    const double share = rate / static_cast<double>(entry.servers.size());
    for (ServerId s : entry.servers) {
      if (!capacity_.contains(s)) continue;
      rates_[s][name] += share;
      est_out_[s] += share;
    }
  }
  void clear_channel(const Channel& channel) {
    for (auto& [s, rates] : rates_) {
      auto it = rates.find(channel);
      if (it == rates.end()) continue;
      est_out_[s] -= it->second;
      rates.erase(it);
    }
  }
  void advance(SimTime dt) { now_ += dt; }
  Limits& mutable_limits() { return limits_; }
  core::Plan& mutable_plan() { return plan_; }
  core::ConsistentHashRing& mutable_base_ring() { return base_ring_; }
  /// Next request_spawn() adds this server (0 => spawns refused).
  void allow_spawn(ServerId id, double capacity) {
    spawn_id_ = id;
    spawn_capacity_ = capacity;
  }

  // ---- observed effects ----
  struct Move {
    Channel channel;
    std::vector<ServerId> to;
    std::string reason;
  };
  [[nodiscard]] const std::vector<Move>& moves() const { return moves_; }
  [[nodiscard]] std::size_t migrations() const { return migrations_; }
  [[nodiscard]] bool overloaded() const { return overloaded_; }
  [[nodiscard]] core::RebalanceKind kind() const { return kind_; }
  [[nodiscard]] ServerId drained() const { return drained_; }
  [[nodiscard]] std::size_t spawns() const { return spawns_; }
  [[nodiscard]] std::size_t triggers() const { return triggers_; }
  void reset_round() {
    moves_.clear();
    migrations_ = 0;
    overloaded_ = false;
    kind_ = core::RebalanceKind::kChannelLevel;
    drained_ = kInvalidServer;
    triggers_ = 0;
  }

  // ---- RoundOps ----
  [[nodiscard]] SimTime now() const override { return now_; }
  [[nodiscard]] const Limits& limits() const override { return limits_; }
  [[nodiscard]] const core::Plan& plan() const override { return plan_; }
  [[nodiscard]] const core::ConsistentHashRing& base_ring() const override {
    return base_ring_;
  }
  [[nodiscard]] const std::map<ServerId, double>& capacity() const override {
    return capacity_;
  }
  [[nodiscard]] const std::map<ServerId, double>& est_out() const override {
    return est_out_;
  }
  [[nodiscard]] double est_lr(ServerId s) const override {
    auto out = est_out_.find(s);
    auto cap = capacity_.find(s);
    if (out == est_out_.end() || cap == capacity_.end() || cap->second <= 0) return 0;
    return out->second / cap->second;
  }
  [[nodiscard]] double est_cpu(ServerId) const override { return 0; }
  [[nodiscard]] double pressure(ServerId s) const override {
    return est_lr(s) / limits_.lr_high;
  }
  [[nodiscard]] const std::map<Channel, double>& rates(ServerId s) const override {
    return rates_[s];
  }
  [[nodiscard]] const std::map<Channel, double>& cpu_rates(ServerId s) const override {
    return cpu_rates_[s];
  }
  [[nodiscard]] std::vector<ServerId> servers_by_load(
      const std::set<ServerId>& exclude) const override {
    std::vector<ServerId> ids;
    for (const auto& [id, _] : capacity_) {
      if (!exclude.contains(id)) ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end(), [&](ServerId a, ServerId b) {
      const double la = pressure(a), lb = pressure(b);
      return la != lb ? la < lb : a < b;
    });
    return ids;
  }
  [[nodiscard]] bool server_live(ServerId s) const override {
    return capacity_.contains(s);
  }
  [[nodiscard]] std::size_t roster_size() const override { return capacity_.size(); }
  [[nodiscard]] std::vector<ChannelLoad> channel_loads() const override {
    std::map<Channel, double> total;
    for (const auto& [_, rates] : rates_) {
      for (const auto& [channel, rate] : rates) total[channel] += rate;
    }
    std::vector<ChannelLoad> loads;
    for (const auto& [channel, rate] : total) {
      const Channel& name = *names_.insert(channel).first;
      loads.push_back(ChannelLoad{kInvalidChannelId, &name, rate});
    }
    return loads;
  }

  void apply(const Channel& channel, const core::PlanEntry& entry,
             std::string reason) override {
    const Channel& name = *names_.insert(channel).first;
    double total = 0;
    for (auto& [s, rates] : rates_) {
      auto it = rates.find(name);
      if (it == rates.end()) continue;
      total += it->second;
      est_out_[s] -= it->second;
      rates.erase(it);
    }
    const double share = total / static_cast<double>(entry.servers.size());
    for (ServerId s : entry.servers) {
      est_out_[s] += share;
      rates_[s][name] += share;
    }
    plan_.set_entry(name, entry);
    moves_.push_back(Move{name, entry.servers, std::move(reason)});
  }
  void add_trigger(std::string, ServerId, double, double) override { ++triggers_; }
  void set_kind(core::RebalanceKind kind) override { kind_ = kind; }
  void mark_overloaded() override { overloaded_ = true; }
  void note_migration() override { ++migrations_; }
  bool request_spawn() override {
    if (spawn_id_ == kInvalidServer) return false;
    add_server(spawn_id_, spawn_capacity_, /*on_base_ring=*/false);
    spawn_id_ = kInvalidServer;
    ++spawns_;
    return true;
  }
  void begin_drain(ServerId victim) override {
    drained_ = victim;
    remove_server(victim);
  }

 private:
  SimTime now_ = 0;
  Limits limits_;
  core::Plan plan_;
  core::ConsistentHashRing base_ring_;
  std::map<ServerId, double> capacity_;
  std::map<ServerId, double> est_out_;
  mutable std::map<ServerId, std::map<Channel, double>> rates_;
  mutable std::map<ServerId, std::map<Channel, double>> cpu_rates_;
  mutable std::set<Channel> names_;  // stable storage for ChannelLoad::name

  std::vector<Move> moves_;
  std::size_t migrations_ = 0;
  bool overloaded_ = false;
  core::RebalanceKind kind_ = core::RebalanceKind::kChannelLevel;
  ServerId drained_ = kInvalidServer;
  std::size_t spawns_ = 0;
  std::size_t triggers_ = 0;
  ServerId spawn_id_ = kInvalidServer;
  double spawn_capacity_ = 0;
};

}  // namespace dynamoth::placement::test
