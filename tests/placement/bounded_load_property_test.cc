// Property test for the bounded-load invariant (ISSUE 7): after every
// rebalance round, no server's assigned load exceeds its (1+epsilon) bound —
// (1+eps) x fair share of the measured load, capacity-weighted — unless the
// policy itself flagged overflow (fleet undersized for one channel).
//
// The workload is a seeded Figure-5-style churn replay against FakeRoundOps:
// the channel population ramps 20 -> 120 with a plateau and a steep climb,
// rates jitter per round with a heavy-tailed hot-spot mix, then the ramp
// reverses so scale-down drains the rented servers again.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "placement/bounded_load.h"
#include "fake_round_ops.h"

namespace dynamoth::placement {
namespace {

using test::FakeRoundOps;

// Fig-5-like population curve over [0,1): ramp, plateau, steep climb, decay.
int population(double phase) {
  if (phase < 0.25) return 20 + static_cast<int>(phase / 0.25 * 40);  // 20 -> 60
  if (phase < 0.45) return 60;                                       // plateau
  if (phase < 0.70) return 60 + static_cast<int>((phase - 0.45) / 0.25 * 60);  // -> 120
  return 120 - static_cast<int>((phase - 0.70) / 0.30 * 100);  // drain to 20
}

struct ChurnResult {
  int rounds_checked = 0;
  int overflow_rounds = 0;
  int spawned = 0;
};

// Drives `rounds` seeded churn rounds and asserts the bound after each one.
ChurnResult run_churn(BoundedLoadPolicy& policy, FakeRoundOps& ops, std::uint32_t seed,
                      int rounds, double epsilon, bool equal_capacity) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> jitter(0.5, 1.5);
  ChurnResult result;
  ServerId next_spawn = 100;
  int max_seen = 0;
  std::size_t prev_spawns = 0;

  for (int round = 0; round < rounds; ++round) {
    const double phase = static_cast<double>(round) / rounds;
    const int channels = population(phase);
    for (int c = 0; c < channels; ++c) {
      // Every 7th tile is a hot spot (quadrant boundary in the game map).
      const double base = (c % 7 == 0) ? 400.0 : 120.0;
      ops.offer("tile:" + std::to_string(c), base * jitter(rng));
    }
    for (int c = channels; c < max_seen; ++c) {
      ops.clear_channel("tile:" + std::to_string(c));  // population shrank
    }
    max_seen = std::max(max_seen, channels);

    ops.allow_spawn(next_spawn, equal_capacity ? 10'000.0 : 5'000.0);
    ops.reset_round();
    policy.system_rebalance(ops, /*scale_down_allowed=*/true);
    if (ops.spawns() > prev_spawns) {
      prev_spawns = ops.spawns();
      ++next_spawn;
      ++result.spawned;
    }

    const auto& stats = policy.last_round();
    if (stats.ran) {
      ++result.rounds_checked;
      if (stats.overflow) {
        ++result.overflow_rounds;
      } else {
        for (const auto& [server, assigned] : stats.assigned) {
          EXPECT_LE(assigned, stats.cap.at(server) + 1e-6)
              << "round " << round << ": server " << server << " exceeds its cap ("
              << assigned << " > " << stats.cap.at(server) << ")";
        }
        if (equal_capacity) {
          // With a homogeneous fleet the cap IS (1+eps) x average load.
          const double avg = stats.total_load / static_cast<double>(stats.assigned.size());
          for (const auto& [server, assigned] : stats.assigned) {
            EXPECT_LE(assigned, (1.0 + epsilon) * avg + 1e-6)
                << "round " << round << ": server " << server;
          }
        }
      }
    }
    ops.advance(seconds(10));
  }
  return result;
}

TEST(BoundedLoadProperty, BoundHoldsUnderSeededFig5ChurnEqualCapacity) {
  PolicyConfig config;
  config.kind = PolicyKind::kBoundedLoad;
  config.bounded_epsilon = 0.25;
  BoundedLoadPolicy policy(config);

  FakeRoundOps ops;
  for (ServerId s = 1; s <= 4; ++s) ops.add_server(s, 10'000, /*on_base_ring=*/true);

  const ChurnResult r = run_churn(policy, ops, /*seed=*/20150629, /*rounds=*/160,
                                  config.bounded_epsilon, /*equal_capacity=*/true);
  EXPECT_GT(r.rounds_checked, 150);  // the bound was actually exercised
  // Overflow is the documented escape hatch, not the steady state.
  EXPECT_LT(r.overflow_rounds, r.rounds_checked / 4);
}

TEST(BoundedLoadProperty, BoundHoldsWithHeterogeneousCapacities) {
  PolicyConfig config;
  config.kind = PolicyKind::kBoundedLoad;
  config.bounded_epsilon = 0.10;  // tighter bound, more forwarding
  BoundedLoadPolicy policy(config);

  FakeRoundOps ops;
  ops.add_server(1, 20'000, true);
  ops.add_server(2, 20'000, true);
  ops.add_server(3, 5'000, true);  // small box: must not get a full share
  ops.add_server(4, 5'000, true);

  const ChurnResult r = run_churn(policy, ops, /*seed=*/4242, /*rounds=*/120,
                                  config.bounded_epsilon, /*equal_capacity=*/false);
  EXPECT_GT(r.rounds_checked, 110);
}

TEST(BoundedLoadProperty, ChurnReplayIsDeterministic) {
  // Two independent policies replaying the same seed must make identical
  // placements — the policy may depend only on names, ids and load numbers.
  PolicyConfig config;
  config.kind = PolicyKind::kBoundedLoad;

  std::vector<std::string> timelines[2];
  for (int run = 0; run < 2; ++run) {
    BoundedLoadPolicy policy(config);
    FakeRoundOps ops;
    for (ServerId s = 1; s <= 4; ++s) ops.add_server(s, 10'000, true);
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> jitter(0.5, 1.5);
    for (int round = 0; round < 40; ++round) {
      for (int c = 0; c < 50; ++c) {
        ops.offer("tile:" + std::to_string(c), ((c % 7 == 0) ? 900.0 : 120.0) * jitter(rng));
      }
      ops.reset_round();
      policy.system_rebalance(ops, true);
      for (const auto& move : ops.moves()) {
        timelines[run].push_back(std::to_string(round) + ":" + move.channel + "->" +
                                 std::to_string(move.to.front()));
      }
      ops.advance(seconds(10));
    }
  }
  EXPECT_EQ(timelines[0], timelines[1]);
}

}  // namespace
}  // namespace dynamoth::placement
