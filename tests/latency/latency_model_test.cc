#include "latency/latency_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <vector>

namespace dynamoth::net {
namespace {

TEST(FixedLatencyModel, ReturnsConfiguredValues) {
  FixedLatencyModel model(millis(25), millis(1));
  Rng rng(1);
  EXPECT_EQ(model.sample(NodeKind::kClient, NodeKind::kInfrastructure, rng), millis(25));
  EXPECT_EQ(model.sample(NodeKind::kInfrastructure, NodeKind::kClient, rng), millis(25));
  EXPECT_EQ(model.sample(NodeKind::kInfrastructure, NodeKind::kInfrastructure, rng), millis(1));
}

TEST(UniformLatencyModel, StaysWithinBounds) {
  UniformLatencyModel model(millis(10), millis(50));
  Rng rng(2);
  for (int i = 0; i < 10'000; ++i) {
    const SimTime t = model.sample(NodeKind::kClient, NodeKind::kInfrastructure, rng);
    ASSERT_GE(t, millis(10));
    ASSERT_LT(t, millis(50));
  }
}

TEST(KingLatencyModel, LanPathIsFast) {
  KingLatencyModel model;
  Rng rng(3);
  EXPECT_EQ(model.sample(NodeKind::kInfrastructure, NodeKind::kInfrastructure, rng),
            model.params().lan_delay);
}

TEST(KingLatencyModel, WanMedianMatchesCalibration) {
  // The synthetic King model replaces the NA-filtered King dataset: median
  // one-way delay ~40 ms (80 ms RTT).
  KingLatencyModel model;
  Rng rng(4);
  std::vector<SimTime> samples;
  for (int i = 0; i < 50'001; ++i) {
    samples.push_back(model.sample(NodeKind::kClient, NodeKind::kInfrastructure, rng));
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
  const SimTime median = samples[samples.size() / 2];
  EXPECT_NEAR(to_millis(median), 40.0, 2.0);
}

TEST(KingLatencyModel, SamplesAreClamped) {
  KingModelParams params;
  params.sigma = 2.0;  // extreme spread to exercise the clamps
  KingLatencyModel model(params);
  Rng rng(5);
  for (int i = 0; i < 50'000; ++i) {
    const SimTime t = model.sample(NodeKind::kClient, NodeKind::kInfrastructure, rng);
    ASSERT_GE(t, params.min_delay);
    ASSERT_LE(t, params.max_delay);
  }
}

TEST(KingLatencyModel, HasHeavyRightTail) {
  KingLatencyModel model;
  Rng rng(6);
  int above_100ms = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (model.sample(NodeKind::kClient, NodeKind::kInfrastructure, rng) > millis(100)) {
      ++above_100ms;
    }
  }
  // Log-normal sigma 0.55 around 40 ms: ~4-6% above 100 ms.
  EXPECT_GT(above_100ms, n / 100);
  EXPECT_LT(above_100ms, n / 5);
}

TEST(KingEmpiricalModel, MatchesEncodedQuantiles) {
  KingEmpiricalModel model;
  Rng rng(11);
  std::vector<SimTime> samples;
  const int n = 100'000;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    samples.push_back(model.sample(NodeKind::kClient, NodeKind::kInfrastructure, rng));
  }
  std::sort(samples.begin(), samples.end());
  auto quantile = [&](double q) {
    return samples[static_cast<std::size_t>(q * (n - 1))];
  };
  // The built-in table pins p50 = 40 ms and p90 = 100 ms one-way.
  EXPECT_NEAR(to_millis(quantile(0.50)), 40.0, 2.0);
  EXPECT_NEAR(to_millis(quantile(0.90)), 100.0, 5.0);
  EXPECT_NEAR(to_millis(quantile(0.25)), 24.0, 2.0);
}

TEST(KingEmpiricalModel, SamplesBoundedByTable) {
  KingEmpiricalModel model;
  Rng rng(12);
  for (int i = 0; i < 50'000; ++i) {
    const SimTime t = model.sample(NodeKind::kClient, NodeKind::kInfrastructure, rng);
    ASSERT_GE(t, model.cdf().front().delay);
    ASSERT_LE(t, model.cdf().back().delay);
  }
}

TEST(KingEmpiricalModel, LanPathBypassesCdf) {
  KingEmpiricalModel model(millis(1));
  Rng rng(13);
  EXPECT_EQ(model.sample(NodeKind::kInfrastructure, NodeKind::kInfrastructure, rng), millis(1));
}

TEST(KingEmpiricalModel, CustomTable) {
  std::vector<KingEmpiricalModel::CdfPoint> cdf = {{0.0, millis(10)}, {1.0, millis(20)}};
  KingEmpiricalModel model(cdf, millis(1));
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = model.sample(NodeKind::kClient, NodeKind::kInfrastructure, rng);
    ASSERT_GE(t, millis(10));
    ASSERT_LE(t, millis(20));
  }
}

TEST(KingEmpiricalModel, RejectsMalformedTables) {
  EXPECT_DEATH(KingEmpiricalModel({{0.0, millis(1)}}, 0), "CHECK");
  EXPECT_DEATH(KingEmpiricalModel({{0.1, millis(1)}, {1.0, millis(2)}}, 0), "CHECK");
  EXPECT_DEATH(KingEmpiricalModel({{0.0, millis(5)}, {1.0, millis(2)}}, 0), "CHECK");
}

TEST(TraceLatencyModel, SamplesComeFromTheTrace) {
  TraceLatencyModel model({millis(10), millis(20), millis(30)}, millis(1));
  Rng rng(21);
  std::set<SimTime> seen;
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = model.sample(NodeKind::kClient, NodeKind::kInfrastructure, rng);
    seen.insert(t);
  }
  EXPECT_EQ(seen, (std::set<SimTime>{millis(10), millis(20), millis(30)}));
  EXPECT_EQ(model.sample(NodeKind::kInfrastructure, NodeKind::kInfrastructure, rng),
            millis(1));
}

TEST(TraceLatencyModel, LoadsRttFileAndHalves) {
  const std::string path = "/tmp/dyn_trace_test.txt";
  {
    std::ofstream out(path);
    out << "# King-style RTTs in ms\n"
        << "80\n"
        << "\n"
        << "  120\n"
        << "bogus\n"   // strtod -> 0, skipped
        << "-5\n";     // negative, skipped
  }
  TraceLatencyModel model = TraceLatencyModel::from_rtt_file(path);
  EXPECT_EQ(model.size(), 2u);
  Rng rng(22);
  for (int i = 0; i < 100; ++i) {
    const SimTime t = model.sample(NodeKind::kClient, NodeKind::kInfrastructure, rng);
    EXPECT_TRUE(t == millis(40) || t == millis(60)) << to_millis(t);
  }
  std::remove(path.c_str());
}

TEST(TraceLatencyModel, EmptyTraceAborts) {
  EXPECT_DEATH(TraceLatencyModel({}, 0), "CHECK");
}

TEST(KingLatencyModel, BothWanDirectionsSampled) {
  KingLatencyModel model;
  Rng rng(7);
  // client->infra and infra->client both take WAN samples (paper V-B items
  // (1) and (2)); the distribution is direction-symmetric.
  double up = 0, down = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    up += to_millis(model.sample(NodeKind::kClient, NodeKind::kInfrastructure, rng));
    down += to_millis(model.sample(NodeKind::kInfrastructure, NodeKind::kClient, rng));
  }
  EXPECT_NEAR(up / n, down / n, 2.0);
}

}  // namespace
}  // namespace dynamoth::net
