#include "reliability/history_store.h"

#include <gtest/gtest.h>

namespace dynamoth::rel {
namespace {

ps::EnvelopePtr make_msg(const Channel& channel, ClientId publisher, std::uint64_t seq) {
  auto env = ps::make_envelope();
  env->id = MessageId{publisher, seq};
  env->kind = ps::MsgKind::kData;
  env->channel = channel;
  env->publisher = publisher;
  env->channel_seq = seq;
  env->payload_bytes = 32;
  return env;
}

TEST(HistoryStore, RecordsAndLooksUpBySequenceRange) {
  HistoryStore store(100);
  for (std::uint64_t s = 1; s <= 10; ++s) store.record(make_msg("c", 7, s));
  const auto found = store.lookup("c", 7, 4, 6);
  ASSERT_EQ(found.size(), 3u);
  EXPECT_EQ(found[0]->channel_seq, 4u);
  EXPECT_EQ(found[2]->channel_seq, 6u);
}

TEST(HistoryStore, FiltersByPublisher) {
  HistoryStore store(100);
  store.record(make_msg("c", 1, 5));
  store.record(make_msg("c", 2, 5));
  EXPECT_EQ(store.lookup("c", 1, 1, 10).size(), 1u);
  EXPECT_EQ(store.lookup("c", 3, 1, 10).size(), 0u);
}

TEST(HistoryStore, UnknownChannelIsEmpty) {
  HistoryStore store(10);
  EXPECT_TRUE(store.lookup("nothing", 1, 1, 5).empty());
  EXPECT_EQ(store.stored("nothing"), 0u);
}

TEST(HistoryStore, EvictsOldestBeyondCapacity) {
  HistoryStore store(5);
  for (std::uint64_t s = 1; s <= 8; ++s) store.record(make_msg("c", 1, s));
  EXPECT_EQ(store.stored("c"), 5u);
  EXPECT_EQ(store.evicted(), 3u);
  EXPECT_TRUE(store.lookup("c", 1, 1, 3).empty());      // evicted
  EXPECT_EQ(store.lookup("c", 1, 4, 8).size(), 5u);     // retained
}

TEST(HistoryStore, UnsequencedMessagesIgnored) {
  HistoryStore store(10);
  auto env = make_msg("c", 1, 0);  // channel_seq == 0
  store.record(env);
  EXPECT_EQ(store.stored("c"), 0u);
}

TEST(HistoryStore, ForgetDropsChannel) {
  HistoryStore store(10);
  store.record(make_msg("a", 1, 1));
  store.record(make_msg("b", 1, 1));
  store.forget("a");
  EXPECT_EQ(store.stored("a"), 0u);
  EXPECT_EQ(store.stored("b"), 1u);
  EXPECT_EQ(store.channels(), 1u);
}

TEST(HistoryStore, CapacityIsPerChannel) {
  HistoryStore store(3);
  for (std::uint64_t s = 1; s <= 3; ++s) {
    store.record(make_msg("a", 1, s));
    store.record(make_msg("b", 1, s));
  }
  EXPECT_EQ(store.stored("a"), 3u);
  EXPECT_EQ(store.stored("b"), 3u);
  EXPECT_EQ(store.evicted(), 0u);
}

}  // namespace
}  // namespace dynamoth::rel
