// End-to-end reliability tests: gap detection, replay recovery, retries,
// and behaviour under real loss (output-buffer overflow disconnects).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "harness/cluster.h"
#include "reliability/replay_service.h"
#include "reliability/reliable_subscriber.h"

namespace dynamoth::rel {
namespace {

struct Fixture {
  explicit Fixture(std::uint64_t seed = 83, std::size_t servers = 2) {
    harness::ClusterConfig config;
    config.seed = seed;
    config.initial_servers = servers;
    config.fixed_latency = true;
    config.fixed_latency_value = millis(10);
    cluster = std::make_unique<harness::Cluster>(config);

    // The replay service runs as an infrastructure-node client.
    net::NodeConfig node_config;
    node_config.kind = net::NodeKind::kInfrastructure;
    node_config.egress_bytes_per_sec = 10e6;
    const NodeId node = cluster->network().add_node(node_config);
    service_client = std::make_unique<core::DynamothClient>(
        cluster->sim(), cluster->network(), cluster->registry(), cluster->base_ring(),
        node, 900'000, core::DynamothClient::Config{}, Rng(seed).fork("svc"));
    service = std::make_unique<ReplayService>(cluster->sim(), *service_client,
                                              ReplayService::Config{});
    service->start();
  }

  std::unique_ptr<harness::Cluster> cluster;
  std::unique_ptr<core::DynamothClient> service_client;
  std::unique_ptr<ReplayService> service;
};

TEST(Replay, ServiceRecordsCoveredChannels) {
  Fixture f;
  f.service->cover("game");
  auto& pub = f.cluster->add_client();
  f.cluster->sim().run_for(seconds(1));
  for (int i = 0; i < 20; ++i) pub.publish("game", 64);
  f.cluster->sim().run_for(seconds(2));
  EXPECT_EQ(f.service->stats().recorded, 20u);
  EXPECT_EQ(f.service->store().stored("game"), 20u);
}

TEST(Replay, GapIsDetectedAndRecovered) {
  Fixture f;
  f.service->cover("events");
  auto& pub = f.cluster->add_client();
  auto& sub_client = f.cluster->add_client();
  ReliableSubscriber sub(f.cluster->sim(), sub_client, {});

  std::set<std::uint64_t> got;
  sub.subscribe("events", [&](const ps::EnvelopePtr& env) { got.insert(env->channel_seq); });
  f.cluster->sim().run_for(seconds(1));

  // Deliver 1..3 normally.
  for (int i = 0; i < 3; ++i) pub.publish("events", 64);
  f.cluster->sim().run_for(seconds(1));
  ASSERT_EQ(got.size(), 3u);

  // Simulate loss: the subscriber misses 4..5 (unsubscribed window at the
  // raw client level while the service keeps recording).
  sub_client.unsubscribe("events");
  f.cluster->sim().run_for(millis(200));
  pub.publish("events", 64);  // seq 4
  pub.publish("events", 64);  // seq 5
  f.cluster->sim().run_for(seconds(1));
  sub.subscribe("events", [&](const ps::EnvelopePtr& env) { got.insert(env->channel_seq); });
  f.cluster->sim().run_for(seconds(1));

  // Next live message (seq 6) exposes the gap; replay fills 4..5.
  pub.publish("events", 64);
  f.cluster->sim().run_for(seconds(5));

  EXPECT_EQ(got, (std::set<std::uint64_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_GE(sub.stats().gaps_detected, 1u);
  EXPECT_EQ(sub.stats().recovered, 2u);
  EXPECT_EQ(sub.open_gaps(), 0u);
  EXPECT_GE(f.service->stats().replayed, 2u);
}

TEST(Replay, NoGapsNoRequests) {
  Fixture f;
  f.service->cover("steady");
  auto& pub = f.cluster->add_client();
  auto& sub_client = f.cluster->add_client();
  ReliableSubscriber sub(f.cluster->sim(), sub_client, {});
  int delivered = 0;
  sub.subscribe("steady", [&](const ps::EnvelopePtr&) { ++delivered; });
  f.cluster->sim().run_for(seconds(1));
  for (int i = 0; i < 50; ++i) {
    pub.publish("steady", 64);
    f.cluster->sim().run_for(millis(100));
  }
  f.cluster->sim().run_for(seconds(2));
  EXPECT_EQ(delivered, 50);
  EXPECT_EQ(sub.stats().gaps_detected, 0u);
  EXPECT_EQ(sub.stats().replays_requested, 0u);
}

TEST(Replay, GivesUpAfterRetriesWhenHistoryLost) {
  Fixture f;
  // Service with a tiny history: the gap will be evicted before replay.
  ReplayService::Config svc_config;
  svc_config.history_per_channel = 2;
  auto& svc_client2 = *f.service_client;  // reuse node? build a fresh service
  (void)svc_client2;
  f.service.reset();  // drop the default service
  f.service = std::make_unique<ReplayService>(f.cluster->sim(), *f.service_client, svc_config);
  f.service->start();
  f.service->cover("lossy");

  auto& pub = f.cluster->add_client();
  auto& sub_client = f.cluster->add_client();
  ReliableSubscriber::Config sub_config;
  sub_config.retry_interval = millis(500);
  sub_config.max_retries = 2;
  ReliableSubscriber sub(f.cluster->sim(), sub_client, sub_config);
  sub.subscribe("lossy", [](const ps::EnvelopePtr&) {});
  f.cluster->sim().run_for(seconds(1));

  pub.publish("lossy", 64);  // seq 1 delivered
  f.cluster->sim().run_for(seconds(1));
  sub_client.unsubscribe("lossy");
  f.cluster->sim().run_for(millis(200));
  for (int i = 0; i < 10; ++i) pub.publish("lossy", 64);  // seq 2..11, mostly evicted
  f.cluster->sim().run_for(seconds(1));
  sub.subscribe("lossy", [](const ps::EnvelopePtr&) {});
  f.cluster->sim().run_for(seconds(1));
  pub.publish("lossy", 64);  // seq 12 exposes gap 2..11
  f.cluster->sim().run_for(seconds(10));

  EXPECT_GE(sub.stats().gaps_detected, 1u);
  EXPECT_GT(sub.stats().gave_up, 0u);
  EXPECT_EQ(sub.open_gaps(), 0u);  // abandoned, not leaked
}

TEST(Replay, RecoversFromRealOverflowLoss) {
  // Force genuine message loss: the subscriber's connection overflows under
  // a burst, Redis drops it, messages published meanwhile are lost, and the
  // replay path restores them.
  harness::ClusterConfig config;
  config.seed = 89;
  config.initial_servers = 1;
  config.fixed_latency = true;
  config.fixed_latency_value = millis(10);
  config.pubsub.conn_drain_bytes_per_sec = 3000;
  config.pubsub.conn_output_buffer_limit = 3000;
  harness::Cluster cluster(config);

  net::NodeConfig node_config;
  node_config.kind = net::NodeKind::kInfrastructure;
  node_config.egress_bytes_per_sec = 10e6;
  const NodeId node = cluster.network().add_node(node_config);
  core::DynamothClient service_client(cluster.sim(), cluster.network(), cluster.registry(),
                                      cluster.base_ring(), node, 900'001,
                                      core::DynamothClient::Config{}, Rng(3).fork("svc"));
  ReplayService::Config svc_config;
  svc_config.chunk_bytes = 1200;  // pace well under the tiny 3 kB buffer
  svc_config.chunk_interval = seconds(1);
  ReplayService service(cluster.sim(), service_client, svc_config);
  service.start();
  service.cover("burst");

  auto& pub = cluster.add_client();
  core::DynamothClient::Config cc;
  cc.reconnect_delay = millis(200);
  auto& sub_client = cluster.add_client(cc);
  ReliableSubscriber sub(cluster.sim(), sub_client, {});
  std::set<std::uint64_t> got;
  sub.subscribe("burst", [&](const ps::EnvelopePtr& env) { got.insert(env->channel_seq); });
  cluster.sim().run_for(seconds(1));

  // Establish the stream baseline (gap detection is relative to the last
  // sequence seen; a fresh subscriber does not pull pre-subscription
  // history).
  for (int i = 0; i < 3; ++i) {
    pub.publish("burst", 150);
    cluster.sim().run_for(millis(500));
  }
  ASSERT_EQ(got.size(), 3u);

  // Burst overwhelms the subscriber's tiny buffer; it gets dropped and
  // reconnects, losing a chunk of the stream.
  for (int i = 0; i < 120; ++i) pub.publish("burst", 150);
  cluster.sim().run_for(seconds(10));
  ASSERT_GE(sub_client.stats().connection_drops, 1u);

  // Trickle afterwards exposes the gap; replay restores the lost middle.
  for (int i = 0; i < 3; ++i) {
    pub.publish("burst", 150);
    cluster.sim().run_for(seconds(2));
  }
  cluster.sim().run_for(seconds(40));  // paced replay takes a while

  EXPECT_EQ(got.size(), 126u) << "lost " << 126 - got.size() << " of 126";
  EXPECT_GE(sub.stats().recovered, 1u);
  EXPECT_EQ(sub.open_gaps(), 0u);
}

}  // namespace
}  // namespace dynamoth::rel
