// Unit tests for the consistent-hashing baseline: ring growth on overload,
// plan emission shape (no replication, no load-awareness, no scale-down).
#include "baseline/consistent_hash_balancer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/cluster.h"

namespace dynamoth::baseline {
namespace {

struct BaselineFixture {
  explicit BaselineFixture(double capacity = 150e3) {
    harness::ClusterConfig config;
    config.seed = 29;
    config.initial_servers = 1;
    config.fixed_latency = true;
    config.fixed_latency_value = millis(5);
    config.server_capacity = capacity;
    config.cloud.spawn_delay = seconds(2);
    cluster = std::make_unique<harness::Cluster>(config);
    ConsistentHashBalancer::Config lb_config;
    lb_config.t_wait = seconds(5);
    lb_config.max_servers = 4;
    lb = &cluster->use_hash_balancer(lb_config);
  }

  void add_feed(const Channel& channel, int subs, double msgs_per_sec,
                std::size_t payload = 400) {
    for (int i = 0; i < subs; ++i) {
      auto& s = cluster->add_client();
      s.subscribe(channel, [](const ps::EnvelopePtr&) {});
    }
    auto* p = &cluster->add_client();
    feeds.push_back(std::make_unique<sim::PeriodicTask>(
        cluster->sim(), static_cast<SimTime>(kSecond / msgs_per_sec),
        [p, channel, payload] { p->publish(channel, payload); }));
    feeds.back()->start();
  }

  std::unique_ptr<harness::Cluster> cluster;
  ConsistentHashBalancer* lb = nullptr;
  std::vector<std::unique_ptr<sim::PeriodicTask>> feeds;
};

TEST(Baseline, QuietSystemStaysAtOneServer) {
  BaselineFixture f;
  f.add_feed("calm", 2, 2);
  f.cluster->sim().run_for(seconds(30));
  EXPECT_EQ(f.cluster->active_servers(), 1u);
  EXPECT_EQ(f.lb->stats().plans_generated, 0u);
}

TEST(Baseline, OverloadGrowsRingAndRemapsChannels) {
  BaselineFixture f(100e3);
  for (int i = 0; i < 6; ++i) f.add_feed("feed" + std::to_string(i), 4, 15, 400);
  f.cluster->sim().run_for(seconds(40));

  EXPECT_GT(f.cluster->active_servers(), 1u);
  EXPECT_EQ(f.lb->ring().server_count(), f.cluster->active_servers());
  EXPECT_GE(f.lb->stats().plans_generated, 1u);

  // The emitted plan maps channels per the grown ring, all unreplicated.
  for (const auto& [channel, entry] : f.lb->current_plan()->entries()) {
    EXPECT_EQ(entry.mode, core::ReplicationMode::kNone) << channel;
    EXPECT_EQ(entry.servers.size(), 1u) << channel;
    EXPECT_EQ(entry.primary(), f.lb->ring().lookup(channel)) << channel;
  }
}

TEST(Baseline, NeverScalesDown) {
  BaselineFixture f(100e3);
  for (int i = 0; i < 6; ++i) f.add_feed("feed" + std::to_string(i), 4, 15, 400);
  f.cluster->sim().run_for(seconds(40));
  const std::size_t peak = f.cluster->active_servers();
  ASSERT_GT(peak, 1u);
  f.feeds.clear();
  f.cluster->sim().run_for(seconds(120));
  EXPECT_EQ(f.cluster->active_servers(), peak);
}

TEST(Baseline, EveryEventIsARingGrowth) {
  BaselineFixture f(100e3);
  for (int i = 0; i < 6; ++i) f.add_feed("feed" + std::to_string(i), 4, 15, 400);
  f.cluster->sim().run_for(seconds(60));
  ASSERT_FALSE(f.lb->events().empty());
  std::size_t last_servers = 1;
  for (const auto& event : f.lb->events()) {
    EXPECT_EQ(event.kind, core::RebalanceKind::kHashing);
    EXPECT_GT(event.active_servers, last_servers);
    last_servers = event.active_servers;
  }
}

TEST(Baseline, StopsAtMaxServers) {
  BaselineFixture f(40e3);  // absurdly small servers
  for (int i = 0; i < 8; ++i) f.add_feed("feed" + std::to_string(i), 5, 20, 500);
  f.cluster->sim().run_for(seconds(90));
  EXPECT_LE(f.cluster->active_servers(), 4u);
}

}  // namespace
}  // namespace dynamoth::baseline
