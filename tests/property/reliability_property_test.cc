// Property: with the replay subsystem active, subscribers converge to a
// complete stream even when plan churn and connection overflow conspire to
// lose messages — the reliability layer turns best-effort pub/sub into
// at-least-once (exactly-once after dedup + gap filling).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "harness/cluster.h"
#include "reliability/replay_service.h"
#include "reliability/reliable_subscriber.h"

namespace dynamoth {
namespace {

class ReliableChurn : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ReliableChurn, CompleteStreamDespiteChurnAndDrops) {
  harness::ClusterConfig config;
  config.seed = GetParam();
  config.initial_servers = 3;
  config.fixed_latency = true;
  config.fixed_latency_value = millis(12);
  // Tight buffers: bursts genuinely drop subscribers now and then.
  config.pubsub.conn_drain_bytes_per_sec = 60e3;
  config.pubsub.conn_output_buffer_limit = 24e3;
  harness::Cluster cluster(config);
  Rng rng = cluster.fork_rng("relchurn");

  // Replay service on an infra node, covering both channels.
  net::NodeConfig infra;
  infra.kind = net::NodeKind::kInfrastructure;
  infra.egress_bytes_per_sec = 10e6;
  core::DynamothClient svc_client(cluster.sim(), cluster.network(), cluster.registry(),
                                  cluster.base_ring(), cluster.network().add_node(infra),
                                  910'000, {}, rng.fork("svc"));
  rel::ReplayService::Config svc_config;
  svc_config.chunk_bytes = 4096;
  svc_config.chunk_interval = millis(300);
  rel::ReplayService service(cluster.sim(), svc_client, svc_config);
  service.start();
  const std::vector<Channel> channels = {"feed0", "feed1"};
  for (const Channel& c : channels) service.cover(c);

  // Two reliable subscribers across the channels.
  struct Sub {
    std::unique_ptr<rel::ReliableSubscriber> reliable;
    std::map<Channel, std::set<std::uint64_t>> got;
  };
  std::vector<std::unique_ptr<Sub>> subs;
  for (int i = 0; i < 2; ++i) {
    auto sub = std::make_unique<Sub>();
    core::DynamothClient::Config cc;
    cc.reconnect_delay = millis(300);
    auto& client = cluster.add_client(cc);
    sub->reliable = std::make_unique<rel::ReliableSubscriber>(cluster.sim(), client,
                                                              rel::ReliableSubscriber::Config{});
    Sub* raw = sub.get();
    for (const Channel& c : channels) {
      sub->reliable->subscribe(c, [raw, c](const ps::EnvelopePtr& env) {
        raw->got[c].insert(env->channel_seq);
      });
    }
    subs.push_back(std::move(sub));
  }
  auto& pub = cluster.add_client();
  cluster.sim().run_for(seconds(2));

  // Traffic with occasional bursts (to force overflow drops) + plan churn.
  std::map<Channel, std::uint64_t> published;
  sim::PeriodicTask traffic(cluster.sim(), millis(200), [&] {
    for (const Channel& c : channels) {
      pub.publish(c, 300);
      ++published[c];
    }
  });
  traffic.start();
  sim::PeriodicTask bursts(cluster.sim(), seconds(7), [&] {
    const Channel& c = channels[static_cast<std::size_t>(rng.uniform_int(0, 1))];
    for (int i = 0; i < 40; ++i) {
      pub.publish(c, 300);
      ++published[c];
    }
  });
  bursts.start();

  const auto servers = cluster.server_ids();
  std::uint64_t version = 0;
  core::Plan global;
  sim::PeriodicTask churn(cluster.sim(), seconds(5), [&] {
    for (const Channel& c : channels) {
      if (!rng.chance(0.5)) continue;
      core::PlanEntry entry;
      entry.version = ++version;
      entry.mode = core::ReplicationMode::kNone;
      entry.servers = {servers[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(servers.size()) - 1))]};
      global.set_entry(c, entry);
    }
    cluster.install_plan(global);
  });
  churn.start();

  cluster.sim().run_for(seconds(45));
  traffic.stop();
  bursts.stop();
  churn.stop();
  // Quiesce generously: paced replay + retries need time.
  cluster.sim().run_for(seconds(60));

  for (const Channel& c : channels) {
    for (std::size_t i = 0; i < subs.size(); ++i) {
      const auto& got = subs[i]->got[c];
      // Completeness from each subscriber's own baseline (its first seen
      // sequence) onwards — everything after must be present.
      ASSERT_FALSE(got.empty());
      const std::uint64_t base = *got.begin();
      const std::uint64_t expect = published[c] - base + 1;
      EXPECT_EQ(got.size(), expect)
          << "sub " << i << " channel " << c << ": missing "
          << expect - got.size() << " messages (base " << base << ")";
      EXPECT_EQ(subs[i]->reliable->open_gaps(), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReliableChurn, testing::Values(301u, 302u, 303u, 304u));

}  // namespace
}  // namespace dynamoth
