// Property sweep over replication modes and replica counts: for every
// (mode, replicas, latency-model) combination, every subscriber receives
// every publication exactly once, and the wire-message fan-in/fan-out obeys
// the scheme's contract (paper II-B).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "harness/cluster.h"

namespace dynamoth {
namespace {

struct ReplicationParams {
  core::ReplicationMode mode;
  int replicas;
  bool king_latency;
};

std::string param_name(const testing::TestParamInfo<ReplicationParams>& info) {
  std::string mode = core::to_string(info.param.mode);
  for (char& c : mode) {
    if (c == '-') c = '_';
  }
  return mode + "_x" + std::to_string(info.param.replicas) +
         (info.param.king_latency ? "_king" : "_fixed");
}

class ReplicationSweep : public testing::TestWithParam<ReplicationParams> {};

TEST_P(ReplicationSweep, ExactlyOnceAndWireContract) {
  const ReplicationParams param = GetParam();

  harness::ClusterConfig config;
  config.seed = 1000 + static_cast<std::uint64_t>(param.replicas) * 10 +
                static_cast<std::uint64_t>(param.mode);
  config.initial_servers = 4;
  config.fixed_latency = !param.king_latency;
  config.fixed_latency_value = millis(10);
  harness::Cluster cluster(config);

  const Channel c = "swept";
  const auto all_servers = cluster.server_ids();
  core::PlanEntry entry;
  entry.mode = param.mode;
  entry.version = 1;
  entry.servers.assign(all_servers.begin(),
                       all_servers.begin() + param.replicas);
  core::Plan plan;
  plan.set_entry(c, entry);
  cluster.install_plan(plan);

  constexpr int kSubscribers = 12;
  constexpr int kPublishers = 6;
  constexpr int kRounds = 20;

  struct Sub {
    core::DynamothClient* client;
    std::set<MessageId> seen;
    int deliveries = 0;
  };
  std::vector<std::unique_ptr<Sub>> subs;
  for (int i = 0; i < kSubscribers; ++i) {
    auto sub = std::make_unique<Sub>();
    sub->client = &cluster.add_client();
    Sub* raw = sub.get();
    sub->client->subscribe(c, [raw](const ps::EnvelopePtr& env) {
      raw->seen.insert(env->id);
      ++raw->deliveries;
    });
    subs.push_back(std::move(sub));
  }
  std::vector<core::DynamothClient*> pubs;
  for (int i = 0; i < kPublishers; ++i) {
    auto& p = cluster.add_client();
    p.absorb_entry(c, entry);  // steady-state configuration, like Fig 4
    pubs.push_back(&p);
  }
  cluster.sim().run_for(seconds(2));

  int published = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (auto* p : pubs) {
      p->publish(c, 64);
      ++published;
    }
    cluster.sim().run_for(millis(250));
  }
  cluster.sim().run_for(seconds(5));

  // Exactly-once delivery to every subscriber.
  for (const auto& sub : subs) {
    EXPECT_EQ(sub->seen.size(), static_cast<std::size_t>(published));
    EXPECT_EQ(sub->deliveries, published);
  }

  // Wire contract: all-publishers sends one copy per replica; the other
  // modes exactly one per publish.
  const std::uint64_t expected_per_publish =
      param.mode == core::ReplicationMode::kAllPublishers
          ? static_cast<std::uint64_t>(param.replicas)
          : 1u;
  for (auto* p : pubs) {
    EXPECT_EQ(p->stats().messages_sent,
              static_cast<std::uint64_t>(kRounds) * expected_per_publish);
  }

  // Placement contract: all-subscribers subscribes everywhere, the other
  // modes on exactly one server.
  for (const auto& sub : subs) {
    const auto placed = sub->client->subscription_servers(c);
    if (param.mode == core::ReplicationMode::kAllSubscribers) {
      EXPECT_EQ(placed.size(), static_cast<std::size_t>(param.replicas));
    } else {
      EXPECT_EQ(placed.size(), 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ReplicationSweep,
    testing::Values(
        ReplicationParams{core::ReplicationMode::kNone, 1, false},
        ReplicationParams{core::ReplicationMode::kNone, 1, true},
        ReplicationParams{core::ReplicationMode::kAllSubscribers, 2, false},
        ReplicationParams{core::ReplicationMode::kAllSubscribers, 3, false},
        ReplicationParams{core::ReplicationMode::kAllSubscribers, 4, true},
        ReplicationParams{core::ReplicationMode::kAllPublishers, 2, false},
        ReplicationParams{core::ReplicationMode::kAllPublishers, 3, true},
        ReplicationParams{core::ReplicationMode::kAllPublishers, 4, false}),
    param_name);

}  // namespace
}  // namespace dynamoth
