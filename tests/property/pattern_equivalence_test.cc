// Pattern-subscription equivalence property (the tentpole's correctness
// anchor): a wildcard (PSUBSCRIBE) client and an explicit client covering
// the same channels must receive EXACTLY the same message set — through
// plan-driven rebalancing, replication, and server crash/restart.
//
// Both clients run side by side in one fixed-latency cluster, so their
// subscription placements and reconnects happen at identical simulated
// instants; any divergence in the received (channel, channel_seq) sets is a
// routing failure of the pattern path, not timing jitter. (Under the King
// WAN model, clients with different RTTs re-place subscriptions at
// different instants during churn and legitimately diverge by a handful of
// messages — explicit clients among themselves included — which is why
// every scenario here pins fixed_latency.)
//
// The third test drives the full flash-crowd harness at several seeds with
// seeded-random spike schedules: the bench's equivalence gate (deliverable
// publications a wildcard listener missed) must hold at every seed, and
// replica-overlap deliveries must never produce duplicate handler calls.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/control.h"
#include "harness/cluster.h"
#include "harness/flashcrowd.h"
#include "sim/simulator.h"

namespace dynamoth {
namespace {

struct Arm {
  core::DynamothClient* client = nullptr;
  std::map<Channel, std::set<std::uint64_t>> seen;
  std::uint64_t handled = 0;  // raw handler calls, duplicates included

  [[nodiscard]] std::uint64_t unique() const {
    std::uint64_t total = 0;
    for (const auto& [_, seqs] : seen) total += seqs.size();
    return total;
  }
};

core::DynamothClient::Config subscriber_config() {
  core::DynamothClient::Config cc;
  cc.sweep_interval = seconds(1);
  cc.reconnect_delay = millis(200);
  cc.entry_timeout = seconds(600);
  cc.resubscribe_keepalive = true;
  return cc;
}

core::DynamothClient::Config publisher_config() {
  core::DynamothClient::Config cc = subscriber_config();
  cc.max_pending_publishes = 4096;
  cc.republish_window = seconds(15);
  return cc;
}

auto recorder(Arm& arm) {
  return [&arm](const ps::EnvelopePtr& env) {
    ++arm.handled;
    arm.seen[env->channel].insert(env->channel_seq);
  };
}

core::Plan plan_with(const std::vector<Channel>& channels,
                     const std::vector<std::vector<ServerId>>& homes,
                     core::ReplicationMode mode, std::uint64_t version) {
  core::Plan plan;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    core::PlanEntry entry;
    entry.servers = homes[i];
    entry.mode = mode;
    entry.version = version;
    plan.set_entry(channels[i], entry);
  }
  return plan;
}

void expect_same_messages(const Arm& pattern, const Arm& explicit_arm) {
  ASSERT_GT(explicit_arm.unique(), 0u);
  // Exact set equality, reported per channel so a failure names the channel
  // and the diverging sequence numbers.
  for (const auto& [channel, seqs] : explicit_arm.seen) {
    SCOPED_TRACE(testing::Message() << "channel " << channel);
    auto it = pattern.seen.find(channel);
    ASSERT_NE(it, pattern.seen.end()) << "wildcard arm never saw the channel";
    EXPECT_EQ(it->second, seqs);
  }
  EXPECT_EQ(pattern.seen.size(), explicit_arm.seen.size());
  // Replica overlap must be deduplicated on both arms: every handler call
  // delivered a distinct publication.
  EXPECT_EQ(pattern.handled, pattern.unique());
  EXPECT_EQ(explicit_arm.handled, explicit_arm.unique());
}

TEST(PatternEquivalence, SurvivesMovesAndReplication) {
  for (std::uint64_t seed : {3u, 11u, 29u}) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    harness::ClusterConfig config;
    config.seed = seed;
    config.initial_servers = 3;
    config.fixed_latency = true;
    config.fixed_latency_value = millis(8);
    harness::Cluster cluster(config);
    const auto servers = cluster.server_ids();

    const std::vector<Channel> channels = {"peq:0", "peq:1", "peq:2"};
    Arm pattern{&cluster.add_client(subscriber_config())};
    Arm explicit_arm{&cluster.add_client(subscriber_config())};
    pattern.client->psubscribe("peq:*", recorder(pattern));
    for (const Channel& c : channels) {
      explicit_arm.client->subscribe(c, recorder(explicit_arm));
    }

    std::vector<core::DynamothClient*> pubs;
    for (std::size_t i = 0; i < channels.size(); ++i) {
      pubs.push_back(&cluster.add_client(publisher_config()));
    }
    sim::PeriodicTask traffic(cluster.sim(), millis(50), [&] {
      for (std::size_t i = 0; i < channels.size(); ++i) {
        pubs[i]->publish(channels[i], 100);
      }
    });
    cluster.sim().run_for(seconds(1));
    traffic.start();
    cluster.sim().run_for(seconds(3));

    // Round 1: scatter every channel onto a different single owner.
    cluster.install_plan(plan_with(
        channels, {{servers[1]}, {servers[2]}, {servers[0]}},
        core::ReplicationMode::kNone, 1));
    cluster.sim().run_for(seconds(4));

    // Round 2: replicate each channel onto two servers (all-subscribers
    // mode: both replicas deliver; clients must dedup the overlap).
    cluster.install_plan(plan_with(
        channels,
        {{servers[1], servers[0]}, {servers[2], servers[1]}, {servers[0], servers[2]}},
        core::ReplicationMode::kAllSubscribers, 2));
    cluster.sim().run_for(seconds(4));

    // Round 3: collapse back to single owners.
    cluster.install_plan(plan_with(
        channels, {{servers[0]}, {servers[0]}, {servers[1]}},
        core::ReplicationMode::kNone, 3));
    cluster.sim().run_for(seconds(4));
    traffic.stop();
    cluster.sim().run_for(seconds(5));

    expect_same_messages(pattern, explicit_arm);
  }
}

TEST(PatternEquivalence, SurvivesCrashAndRestart) {
  for (std::uint64_t seed : {7u, 19u}) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    harness::ClusterConfig config;
    config.seed = seed;
    config.initial_servers = 3;
    config.fixed_latency = true;
    config.fixed_latency_value = millis(8);
    harness::Cluster cluster(config);

    core::DynamothLoadBalancer::Config lb;
    lb.t_wait = seconds(5);
    lb.base.detect_failures = true;
    lb.base.detector.timeout = seconds(3);
    cluster.use_dynamoth(lb);

    const std::vector<Channel> channels = {"per:0", "per:1", "per:2", "per:3"};
    Arm pattern{&cluster.add_client(subscriber_config())};
    Arm explicit_arm{&cluster.add_client(subscriber_config())};
    pattern.client->psubscribe("per:*", recorder(pattern));
    for (const Channel& c : channels) {
      explicit_arm.client->subscribe(c, recorder(explicit_arm));
    }
    std::vector<core::DynamothClient*> pubs;
    for (std::size_t i = 0; i < channels.size(); ++i) {
      pubs.push_back(&cluster.add_client(publisher_config()));
    }
    sim::PeriodicTask traffic(cluster.sim(), millis(50), [&] {
      for (std::size_t i = 0; i < channels.size(); ++i) {
        pubs[i]->publish(channels[i], 100);
      }
    });
    cluster.sim().run_for(seconds(1));
    traffic.start();
    cluster.sim().run_for(seconds(5));

    // Kill a server that owns at least one of the channels (the base ring
    // spreads four channels over three servers, so pick the owner of the
    // first channel); the detector re-homes its channels and both arms
    // resubscribe through the emergency plan.
    const ServerId victim = cluster.base_ring()->lookup(channels[0]);
    cluster.crash_server(victim);
    cluster.sim().run_for(seconds(10));
    cluster.restart_server(victim);
    cluster.sim().run_for(seconds(10));
    traffic.stop();
    cluster.sim().run_for(seconds(5));

    // The crash window may drop in-flight publications for everyone; the
    // property is that the wildcard arm loses EXACTLY what the explicit arm
    // loses — same sets, no duplicates.
    expect_same_messages(pattern, explicit_arm);
  }
}

TEST(PatternEquivalence, FlashCrowdHarnessHoldsAtRandomSeeds) {
  for (std::uint64_t seed : {2u, 13u, 41u}) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    harness::FlashCrowdConfig config;
    config.seed = seed;
    config.duration = seconds(30);
    config.drain = seconds(15);
    config.cluster.fixed_latency = true;
    harness::FlashCrowdSchedule::RandomParams params;
    params.horizon = seconds(15);
    params.spikes = 2;
    params.min_factor = 20.0;
    params.max_factor = 50.0;  // stays under the NIC line rate (see header)
    config.spikes = harness::FlashCrowdSchedule::random(seed, params, config.channels);
    const harness::FlashCrowdResult r = harness::run_flashcrowd(config);

    EXPECT_EQ(r.pattern_missing, 0u);
    EXPECT_GT(r.patterns_expanded, 0u);
    EXPECT_GT(r.published, 0u);
    EXPECT_GT(r.pattern_delivered_unique, 0u);
    // Overlapping spikes drive enough churn that publishers exercise the
    // at-least-once republish window; handler-level duplicates are then
    // legitimate on BOTH arms. The property is that the wildcard arm does
    // not duplicate more than the explicit reference arm does (same
    // clients-per-arm, timing-identical under fixed latency) — zero-dup
    // assertions live in the controlled replication test above.
    EXPECT_LE(r.pattern_duplicates, r.explicit_duplicates + r.published / 10);
  }
}

}  // namespace
}  // namespace dynamoth
