// Property-style sweeps over plan/ring/balancer invariants.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/consistent_hash.h"
#include "core/plan.h"
#include "harness/cluster.h"

namespace dynamoth {
namespace {

// ---- Ring properties across seeds and fleet sizes ----

class RingProperty : public testing::TestWithParam<int> {};

TEST_P(RingProperty, GrowthOnlyMovesChannelsToTheNewcomer) {
  const int fleet = GetParam();
  core::ConsistentHashRing ring(96);
  for (ServerId s = 0; s < static_cast<ServerId>(fleet); ++s) ring.add_server(s);

  std::map<Channel, ServerId> before;
  for (int i = 0; i < 2000; ++i) {
    const Channel c = "k" + std::to_string(i * 31);
    before[c] = ring.lookup(c);
  }
  const ServerId newcomer = static_cast<ServerId>(fleet);
  ring.add_server(newcomer);
  int moved = 0;
  for (const auto& [c, old] : before) {
    const ServerId now = ring.lookup(c);
    if (now != old) {
      EXPECT_EQ(now, newcomer) << c;  // consistent hashing's core promise
      ++moved;
    }
  }
  // Roughly 1/(fleet+1) of the channels move (generous tolerance).
  const double expected = 2000.0 / (fleet + 1);
  EXPECT_GT(moved, expected * 0.4);
  EXPECT_LT(moved, expected * 2.2);
}

TEST_P(RingProperty, RemovalIsInverseOfAddition) {
  const int fleet = GetParam();
  core::ConsistentHashRing ring(96);
  for (ServerId s = 0; s < static_cast<ServerId>(fleet); ++s) ring.add_server(s);
  std::map<Channel, ServerId> before;
  for (int i = 0; i < 1000; ++i) {
    const Channel c = "k" + std::to_string(i);
    before[c] = ring.lookup(c);
  }
  ring.add_server(99);
  ring.remove_server(99);
  for (const auto& [c, old] : before) EXPECT_EQ(ring.lookup(c), old) << c;
}

INSTANTIATE_TEST_SUITE_P(FleetSizes, RingProperty, testing::Values(1, 2, 3, 5, 8));

// ---- Plan resolve properties ----

class PlanResolveProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanResolveProperty, ResolveIsDeterministicAndTotal) {
  Rng rng(GetParam());
  core::ConsistentHashRing ring;
  const int fleet = static_cast<int>(rng.uniform_int(1, 6));
  for (ServerId s = 0; s < static_cast<ServerId>(fleet); ++s) ring.add_server(s);

  core::Plan plan;
  for (int i = 0; i < 50; ++i) {
    if (!rng.chance(0.5)) continue;
    core::PlanEntry entry;
    entry.version = static_cast<std::uint64_t>(rng.uniform_int(1, 10));
    const int n = static_cast<int>(rng.uniform_int(1, fleet));
    for (ServerId s = 0; s < static_cast<ServerId>(n); ++s) entry.servers.push_back(s);
    entry.mode = n == 1 ? core::ReplicationMode::kNone
                        : (rng.chance(0.5) ? core::ReplicationMode::kAllSubscribers
                                           : core::ReplicationMode::kAllPublishers);
    plan.set_entry("c" + std::to_string(i), entry);
  }

  for (int i = 0; i < 100; ++i) {
    const Channel c = "c" + std::to_string(i);
    const core::PlanEntry a = plan.resolve(c, ring);
    const core::PlanEntry b = plan.resolve(c, ring);
    EXPECT_EQ(a, b);
    ASSERT_FALSE(a.servers.empty());
    if (plan.find(c) == nullptr) {
      EXPECT_EQ(a.version, 0u);
      EXPECT_EQ(a.mode, core::ReplicationMode::kNone);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanResolveProperty, testing::Values(1u, 2u, 3u, 4u, 5u));

// ---- Balancer safety property: under random sustained workloads the
// balancer keeps the busiest server below the Redis failure point (1.15)
// or has exhausted the fleet. ----

class BalancerSafety : public testing::TestWithParam<std::uint64_t> {};

TEST_P(BalancerSafety, BusiestServerStaysBelowFailureOrFleetExhausted) {
  harness::ClusterConfig config;
  config.seed = GetParam();
  config.initial_servers = 1;
  config.fixed_latency = true;
  config.fixed_latency_value = millis(10);
  config.server_capacity = 150e3;
  config.cloud.spawn_delay = seconds(2);
  harness::Cluster cluster(config);
  core::DynamothLoadBalancer::Config lb_config;
  lb_config.t_wait = seconds(5);
  lb_config.max_servers = 5;
  auto& lb = cluster.use_dynamoth(lb_config);

  Rng rng = cluster.fork_rng("workload");
  std::vector<std::unique_ptr<sim::PeriodicTask>> feeds;
  const int channels = static_cast<int>(rng.uniform_int(4, 10));
  for (int i = 0; i < channels; ++i) {
    const Channel c = "w" + std::to_string(i);
    const int subs = static_cast<int>(rng.uniform_int(2, 6));
    for (int s = 0; s < subs; ++s) {
      cluster.add_client().subscribe(c, [](const ps::EnvelopePtr&) {});
    }
    auto* p = &cluster.add_client();
    const auto period = static_cast<SimTime>(rng.uniform_int(40, 120)) * kMillisecond;
    feeds.push_back(
        std::make_unique<sim::PeriodicTask>(cluster.sim(), period, [p, c] { p->publish(c, 350); }));
    feeds.back()->start();
  }

  cluster.sim().run_for(seconds(90));
  const auto [_, max_lr] = lb.max_load_ratio();
  const bool fleet_exhausted = cluster.active_servers() >= lb_config.max_servers;
  EXPECT_TRUE(max_lr < 1.15 || fleet_exhausted)
      << "max LR " << max_lr << " with " << cluster.active_servers() << " servers";
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalancerSafety,
                         testing::Values(201u, 202u, 203u, 204u, 205u, 206u));

}  // namespace
}  // namespace dynamoth
