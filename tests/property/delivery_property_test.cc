// Property-based tests of the paper's central guarantee: "messages are
// guaranteed to be received by all subscribers despite the reconfiguration"
// (Section I), with exactly-once delivery at the client library.
//
// Randomized plan churn (migrations, replication flips, replica resizes) is
// thrown at a fixed subscriber population under continuous traffic, across
// seeds and latency models; the invariant is checked after quiescence.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "harness/cluster.h"

namespace dynamoth {
namespace {

struct ChurnParams {
  std::uint64_t seed;
  bool king_latency;       // heavy-tail WAN vs fixed
  bool allow_replication;  // include replicated entries in the churn
};

std::string param_name(const testing::TestParamInfo<ChurnParams>& info) {
  return "seed" + std::to_string(info.param.seed) +
         (info.param.king_latency ? "_king" : "_fixed") +
         (info.param.allow_replication ? "_repl" : "_plain");
}

class DeliveryChurn : public testing::TestWithParam<ChurnParams> {};

TEST_P(DeliveryChurn, EveryStableSubscriberReceivesEveryMessageExactlyOnce) {
  const ChurnParams param = GetParam();

  harness::ClusterConfig config;
  config.seed = param.seed;
  config.initial_servers = 3;
  config.fixed_latency = !param.king_latency;
  config.fixed_latency_value = millis(12);
  // Roomy servers: this test is about routing correctness, not overload.
  config.server_capacity = 20e6;
  config.pubsub.conn_drain_bytes_per_sec = 10e6;
  harness::Cluster cluster(config);
  Rng rng = cluster.fork_rng("churn");

  constexpr int kChannels = 6;
  constexpr int kSubscribersPerChannel = 4;
  constexpr int kPublishers = 6;

  std::vector<Channel> channels;
  for (int i = 0; i < kChannels; ++i) channels.push_back("ch" + std::to_string(i));

  // Stable subscribers: subscribe once, never leave.
  struct Sub {
    core::DynamothClient* client;
    std::map<Channel, std::set<std::uint64_t>> seen;  // channel -> unique ids
    std::map<Channel, int> delivered;                 // handler invocations
  };
  std::vector<std::unique_ptr<Sub>> subs;
  for (const Channel& c : channels) {
    for (int i = 0; i < kSubscribersPerChannel; ++i) {
      auto sub = std::make_unique<Sub>();
      sub->client = &cluster.add_client();
      Sub* raw = sub.get();
      sub->client->subscribe(c, [raw, c](const ps::EnvelopePtr& env) {
        raw->seen[c].insert(env->id.origin * 1'000'000 + env->id.seq);
        raw->delivered[c] += 1;
      });
      subs.push_back(std::move(sub));
    }
  }

  std::vector<core::DynamothClient*> publishers;
  for (int i = 0; i < kPublishers; ++i) publishers.push_back(&cluster.add_client());
  cluster.sim().run_for(seconds(2));

  // Continuous traffic: every publisher hits a random channel every 100ms.
  std::map<Channel, int> published;
  sim::PeriodicTask traffic(cluster.sim(), millis(100), [&] {
    for (auto* p : publishers) {
      const Channel& c =
          channels[static_cast<std::size_t>(rng.uniform_int(0, kChannels - 1))];
      p->publish(c, 80);
      published[c] += 1;
    }
  });
  traffic.start();

  // Random plan churn every ~4s for 40s. The plan is cumulative: like the
  // paper's global plans, it always carries every mapped channel (a partial
  // plan would silently unmap untouched channels back to hash fallback).
  const auto servers = cluster.server_ids();
  std::map<Channel, std::uint64_t> versions;
  core::Plan global_plan;
  sim::PeriodicTask churn(cluster.sim(), seconds(4), [&] {
    core::Plan& plan = global_plan;
    for (const Channel& c : channels) {
      if (!rng.chance(0.6)) continue;  // this channel changes
      core::PlanEntry entry;
      entry.version = ++versions[c];
      const int mode_roll =
          param.allow_replication ? static_cast<int>(rng.uniform_int(0, 2)) : 0;
      if (mode_roll == 0) {
        entry.mode = core::ReplicationMode::kNone;
        entry.servers = {servers[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(servers.size()) - 1))]};
      } else {
        entry.mode = mode_roll == 1 ? core::ReplicationMode::kAllSubscribers
                                    : core::ReplicationMode::kAllPublishers;
        // 2 or 3 replicas out of the fleet.
        std::vector<ServerId> members(servers.begin(), servers.end());
        if (rng.chance(0.5)) members.resize(2);
        entry.servers = members;
      }
      plan.set_entry(c, entry);
    }
    cluster.install_plan(plan);
  });
  churn.start();

  cluster.sim().run_for(seconds(40));
  traffic.stop();
  churn.stop();
  cluster.sim().run_for(seconds(20));  // quiesce: everything in flight lands

  for (const Channel& c : channels) {
    for (const auto& sub : subs) {
      if (!sub->client->subscribed(c)) continue;
      EXPECT_EQ(sub->seen[c].size(), static_cast<std::size_t>(published[c]))
          << "channel " << c << ": lost or phantom messages";
      EXPECT_EQ(sub->delivered[c], published[c])
          << "channel " << c << ": duplicate deliveries leaked past dedup";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Churn, DeliveryChurn,
    testing::Values(ChurnParams{101, false, false}, ChurnParams{102, false, false},
                    ChurnParams{103, false, true}, ChurnParams{104, false, true},
                    ChurnParams{105, true, false}, ChurnParams{106, true, true},
                    ChurnParams{107, true, true}, ChurnParams{108, true, false}),
    param_name);

// After churn stops, the lazy propagation must converge: publishers stop
// being redirected.
class ConvergenceChurn : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ConvergenceChurn, WrongServerRepliesStopAfterChurnEnds) {
  harness::ClusterConfig config;
  config.seed = GetParam();
  config.initial_servers = 3;
  config.fixed_latency = true;
  config.fixed_latency_value = millis(10);
  config.server_capacity = 20e6;
  harness::Cluster cluster(config);
  Rng rng = cluster.fork_rng("conv");

  const Channel c = "converge";
  auto& sub = cluster.add_client();
  sub.subscribe(c, [](const ps::EnvelopePtr&) {});
  auto& pub = cluster.add_client();

  sim::PeriodicTask traffic(cluster.sim(), millis(100), [&] { pub.publish(c, 64); });
  traffic.start();

  const auto servers = cluster.server_ids();
  std::uint64_t version = 0;
  sim::PeriodicTask churn(cluster.sim(), seconds(3), [&] {
    core::Plan plan;
    core::PlanEntry entry;
    entry.version = ++version;
    entry.mode = core::ReplicationMode::kNone;
    entry.servers = {servers[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(servers.size()) - 1))]};
    plan.set_entry(c, entry);
    cluster.install_plan(plan);
  });
  churn.start();
  cluster.sim().run_for(seconds(20));
  churn.stop();

  // Let the last reconfiguration settle, then measure redirects.
  cluster.sim().run_for(seconds(5));
  const auto redirects_before = pub.stats().wrong_server_replies;
  cluster.sim().run_for(seconds(10));
  EXPECT_EQ(pub.stats().wrong_server_replies, redirects_before)
      << "publisher still being redirected after churn ended";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceChurn, testing::Values(7u, 8u, 9u, 10u));

}  // namespace
}  // namespace dynamoth
