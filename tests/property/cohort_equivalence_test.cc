// Cohort equivalence property (the cohort subsystem's correctness anchor):
// a Cohort of N members and N expanded individual clients with matched seeds
// must drive EXACTLY the same aggregate load.
//
// Seed matching: the cohort draws a phase u ~ U[0,1) from Rng(kPhaseSeed)
// and publishes at phase + m*P where P = 1s / (N * rate). The individual run
// recomputes the same phase from a copy of that Rng and gives member j a
// periodic publisher with period N*P starting at phase + j*P — the union of
// the members' publication instants is exactly the cohort's tick train, so
// every wire publication happens at the same simulated microsecond in both
// runs.
//
// What is compared exactly:
//   * every server-side publish event: processing time and weighted
//     subscriber count (the fan-out the LLA and billing see),
//   * the per-window "arena" ChannelStats in the LLA's LoadReports
//     (publications, deliveries, bytes, weighted subscribers/publishers,
//     attributed CPU),
//   * total modeled member deliveries and the standing subscriber weight,
//   * the rebalance audit trail when the load crosses lr_high.
//
// What cannot be bit-equal — and why it is fine: the LoadReport wire size
// grows with the number of channels that have subscribers, and N individual
// clients carry N "@ctl:client-*" channels where the cohort carries one. The
// report-to-balancer bytes therefore differ by a few hundred B/s, shifting
// the NIC-measured M_i (and thus the decision-time load ratio) by a few
// percent. The audit comparison uses a decisive margin (LR ~ 0.93 against a
// 0.85 threshold) so both representations trigger identically.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "cohort/cohort.h"
#include "core/client.h"
#include "core/control.h"
#include "core/lla.h"
#include "core/load_balancer.h"
#include "harness/cluster.h"
#include "obs/audit.h"
#include "pubsub/server.h"

namespace dynamoth {
namespace {

constexpr double kRate = 1.0;        // publications per member per second
constexpr std::size_t kPayload = 140;
constexpr std::uint64_t kPhaseSeed = 4242;

[[nodiscard]] SimTime aggregate_period(std::uint32_t members) {
  return std::max<SimTime>(
      1, static_cast<SimTime>(static_cast<double>(kSecond) /
                              (static_cast<double>(members) * kRate)));
}

[[nodiscard]] SimTime matched_phase(std::uint32_t members) {
  Rng rng(kPhaseSeed);  // same first draw as the cohort's ticker phase
  return static_cast<SimTime>(rng.uniform() *
                              static_cast<double>(aggregate_period(members)));
}

struct PublishRecord {
  SimTime at = 0;            // server processing time
  std::size_t delivered = 0; // weighted modeled subscribers served
  bool operator==(const PublishRecord&) const = default;
};

/// Declared before the Cluster in every scenario so it outlives the server
/// that holds a pointer to it.
class RecordingObserver final : public ps::LocalObserver {
 public:
  void on_publish(const ps::EnvelopePtr& env, std::size_t subscriber_count,
                  std::uint32_t /*publisher_weight*/) override {
    if (env->channel == "arena") records.push_back({sim->now(), subscriber_count});
  }
  void on_subscribe(ps::ConnId, const Channel&, NodeId) override {}
  void on_unsubscribe(ps::ConnId, const Channel&, NodeId) override {}
  void on_disconnect(ps::ConnId, const std::vector<Channel>&,
                     const std::vector<std::string>&, ps::CloseReason) override {}

  sim::Simulator* sim = nullptr;
  std::vector<PublishRecord> records;
};

/// The population under test, in either representation. Owns the cohort /
/// the expanded members' tickers; both publish kRate per member per second
/// on "arena" with the matched phase.
struct Population {
  void install(harness::Cluster& cluster, bool cohort_mode, std::uint32_t members) {
    if (cohort_mode) {
      cohort::CohortConfig cc;
      cc.channel = "arena";
      cc.members = members;
      cc.publish_rate_per_member = kRate;
      cc.payload_bytes = kPayload;
      cohort = std::make_unique<cohort::Cohort>(cluster.sim(), cluster.add_client(), cc,
                                                Rng(kPhaseSeed), [](SimTime) {}, nullptr);
      cohort->start();
      return;
    }
    const SimTime period = aggregate_period(members);
    const SimTime phase = matched_phase(members);
    for (std::uint32_t j = 0; j < members; ++j) {
      core::DynamothClient& member = cluster.add_client();
      member.subscribe("arena",
                       [this](const ps::EnvelopePtr&) { ++individual_deliveries; });
      tickers.push_back(std::make_unique<sim::PeriodicTask>(
          cluster.sim(), period * members,
          [&member] { member.publish("arena", kPayload); }));
      tickers.back()->start_after(phase + static_cast<SimTime>(j) * period);
    }
  }

  [[nodiscard]] std::uint64_t member_deliveries() const {
    return cohort ? cohort->stats().member_deliveries : individual_deliveries;
  }

  std::unique_ptr<cohort::Cohort> cohort;
  std::vector<std::unique_ptr<sim::PeriodicTask>> tickers;
  std::uint64_t individual_deliveries = 0;
};

struct RunOutcome {
  std::vector<PublishRecord> publishes;
  std::vector<core::ChannelStats> windows;  // "arena" entry of each LoadReport
  std::uint64_t member_deliveries = 0;
  std::uint64_t subscriber_weight = 0;
};

RunOutcome run_scenario(bool cohort_mode, std::uint32_t members) {
  harness::ClusterConfig config;
  config.seed = 5;
  config.initial_servers = 1;
  config.fixed_latency = true;
  config.fixed_latency_value = millis(20);

  RecordingObserver obs;
  auto cluster = std::make_unique<harness::Cluster>(config);
  obs.sim = &cluster->sim();
  const ServerId sid = cluster->server_ids().front();
  cluster->server(sid).add_observer(&obs);

  // Intercept the LLA's reports at a probe node instead of a balancer.
  RunOutcome out;
  const NodeId probe =
      cluster->network().add_node({net::NodeKind::kInfrastructure, 12.5e6});
  cluster->lla(sid).set_report_target(probe, [&out](const core::LoadReport& report) {
    auto it = report.channels.find("arena");
    out.windows.push_back(it == report.channels.end() ? core::ChannelStats{}
                                                      : it->second);
  });

  Population population;
  population.install(*cluster, cohort_mode, members);
  cluster->sim().run_until(seconds(12));

  out.publishes = std::move(obs.records);
  out.member_deliveries = population.member_deliveries();
  out.subscriber_weight = cluster->server(sid).subscriber_weight("arena");
  return out;
}

TEST(CohortEquivalence, AggregatesMatchExpandedClientsExactly) {
  for (std::uint32_t members : {1u, 2u, 5u, 8u}) {
    SCOPED_TRACE(testing::Message() << "members=" << members);
    // The first publication must land after the subscriptions settle (one
    // WAN hop plus command serialization), otherwise the two representations
    // could legitimately diverge on early deliveries.
    ASSERT_GT(matched_phase(members), millis(25));

    const RunOutcome cohort = run_scenario(/*cohort_mode=*/true, members);
    const RunOutcome expanded = run_scenario(/*cohort_mode=*/false, members);

    // Every wire publication: same instant, same weighted fan-out.
    ASSERT_EQ(cohort.publishes.size(), expanded.publishes.size());
    ASSERT_GT(cohort.publishes.size(), 8u);  // ~12 at 1/member/s over 12 s
    for (std::size_t k = 0; k < cohort.publishes.size(); ++k) {
      SCOPED_TRACE(testing::Message() << "publish #" << k);
      EXPECT_EQ(cohort.publishes[k].at, expanded.publishes[k].at);
      EXPECT_EQ(cohort.publishes[k].delivered, expanded.publishes[k].delivered);
      EXPECT_EQ(cohort.publishes[k].delivered, members);
    }

    // Aggregate accounting the balancer would act on.
    EXPECT_EQ(cohort.subscriber_weight, members);
    EXPECT_EQ(expanded.subscriber_weight, members);
    EXPECT_EQ(cohort.member_deliveries, expanded.member_deliveries);
    EXPECT_EQ(cohort.member_deliveries,
              static_cast<std::uint64_t>(members) * cohort.publishes.size());

    // Per-window LLA channel stats, field by field.
    ASSERT_EQ(cohort.windows.size(), expanded.windows.size());
    ASSERT_GE(cohort.windows.size(), 10u);
    for (std::size_t w = 0; w < cohort.windows.size(); ++w) {
      SCOPED_TRACE(testing::Message() << "window #" << w);
      const core::ChannelStats& a = cohort.windows[w];
      const core::ChannelStats& b = expanded.windows[w];
      EXPECT_EQ(a.publications, b.publications);
      EXPECT_EQ(a.deliveries, b.deliveries);
      EXPECT_EQ(a.bytes_in, b.bytes_in);
      EXPECT_EQ(a.bytes_out, b.bytes_out);
      EXPECT_EQ(a.subscribers, b.subscribers);
      EXPECT_EQ(a.publishers, b.publishers);
      EXPECT_EQ(a.cpu_us, b.cpu_us);
    }
  }
}

// ---------------------------------------------------------------------------

std::vector<obs::RebalanceRecord> run_audit_scenario(bool cohort_mode) {
  constexpr std::uint32_t kMembers = 6;

  harness::ClusterConfig config;
  config.seed = 5;
  config.initial_servers = 1;
  config.fixed_latency = true;
  config.fixed_latency_value = millis(20);
  // 6 members x 1 msg/s, each delivered to 6 modeled subscribers at
  // (140 + 64) B => ~7.3 kB/s against 8 kB/s advertised: LR ~ 0.92, far
  // enough above lr_high that the report-size delta between modes (a few
  // percent of M_i) cannot flip the decision.
  config.server_capacity = 8000;
  // A spawn longer than the run: the high-load round requests a server and
  // leaves an audit-only record, but the plan never changes — keeping both
  // runs on one server for the whole comparison.
  config.cloud.spawn_delay = seconds(1000);

  auto cluster = std::make_unique<harness::Cluster>(config);
  core::DynamothLoadBalancer::Config lb;
  lb.t_wait = seconds(5);
  lb.enable_replication = false;
  lb.max_servers = 2;
  core::DynamothLoadBalancer& balancer = cluster->use_dynamoth(lb);

  Population population;
  population.install(*cluster, cohort_mode, kMembers);
  cluster->sim().run_until(seconds(25));

  const auto& records = balancer.audit().records();
  return {records.begin(), records.end()};
}

TEST(CohortEquivalence, RebalanceAuditTriggersMatch) {
  ASSERT_GT(matched_phase(6), millis(25));
  const std::vector<obs::RebalanceRecord> cohort = run_audit_scenario(true);
  const std::vector<obs::RebalanceRecord> expanded = run_audit_scenario(false);

  ASSERT_GE(cohort.size(), 1u) << "overload never triggered in cohort mode";
  ASSERT_EQ(cohort.size(), expanded.size());
  for (std::size_t r = 0; r < cohort.size(); ++r) {
    SCOPED_TRACE(testing::Message() << "record #" << r);
    const obs::RebalanceRecord& a = cohort[r];
    const obs::RebalanceRecord& b = expanded[r];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.plan_id, b.plan_id);
    EXPECT_EQ(a.spawn_requested, b.spawn_requested);
    EXPECT_EQ(a.forced, b.forced);
    EXPECT_EQ(a.active_servers, b.active_servers);
    EXPECT_EQ(a.releasing, b.releasing);
    EXPECT_EQ(a.moves.size(), b.moves.size());
    // Decision ticks are 1 s apart; the report-size delta shifts M_i by a
    // few percent, never enough to move the crossing to a different tick.
    EXPECT_NEAR(to_seconds(a.time), to_seconds(b.time), 1.5);
    ASSERT_EQ(a.triggers.size(), b.triggers.size());
    for (std::size_t t = 0; t < a.triggers.size(); ++t) {
      EXPECT_EQ(a.triggers[t].reason, b.triggers[t].reason);
      EXPECT_EQ(a.triggers[t].server, b.triggers[t].server);
      EXPECT_EQ(a.triggers[t].threshold, b.triggers[t].threshold);
      EXPECT_NEAR(a.triggers[t].value, b.triggers[t].value, 0.1);
    }
  }
  // The overload round asked the cloud for capacity in both representations.
  EXPECT_TRUE(cohort.front().spawn_requested);
  EXPECT_TRUE(expanded.front().spawn_requested);
}

}  // namespace
}  // namespace dynamoth
