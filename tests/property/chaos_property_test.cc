// Randomized fault-schedule properties: under seeded chaos the system must
// never wedge, and with the reliability layer on, every gap the fault opened
// must be replayed — zero permanent loss.
//
// Loss faults are excluded from the zero-loss property: the transport is
// TCP-like (a dropped segment is retransmitted and shows up as latency, not
// as a missing message), so random per-message loss is not a fault the
// delivery guarantee is defined against — it would starve the replay
// history service of the same messages the subscribers missed. The
// never-wedges property below runs with loss enabled.
#include <gtest/gtest.h>

#include "fault/schedule.h"
#include "harness/failover.h"

namespace dynamoth {
namespace {

harness::FailoverConfig chaos_config(std::uint64_t seed) {
  harness::FailoverConfig config;
  config.seed = seed;
  config.reliability = true;
  config.duration = seconds(50);
  config.drain = seconds(30);
  // Gap detection is relative to the first message each subscriber sees per
  // publisher; faults only start once that baseline exists.
  config.fault_delay = seconds(6);
  return config;
}

fault::FaultSchedule::RandomParams chaos_params() {
  fault::FaultSchedule::RandomParams params;
  // Ends by duration - fault_delay - ~9s: post-fault traffic re-triggers
  // gap detection for any tail the fault swallowed.
  params.horizon = seconds(35);
  params.faults = 4;
  // Outages must outlive the failure detector (4s timeout + 2 balancer
  // ticks), or the fleet never re-homes the victim's channels and the gap
  // stays open until the (excluded-by-config) original server returns.
  params.min_outage = seconds(8);
  params.mean_outage = seconds(10);
  params.max_outage = seconds(15);
  params.loss = false;  // see file comment
  return params;
}

class ChaosSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSeeds, RandomScheduleLosesNothingWithReliability) {
  harness::FailoverConfig config = chaos_config(GetParam());
  config.schedule = fault::FaultSchedule::random(GetParam(), chaos_params());

  const harness::FailoverResult r = harness::run_failover(config);

  ASSERT_GT(r.published, 0u);
  ASSERT_FALSE(r.faults.empty());
  EXPECT_EQ(r.lost, 0u) << "permanent loss under seed " << GetParam();
  EXPECT_EQ(r.reliability_totals.gave_up, 0u);
  EXPECT_EQ(r.client_totals.publishes_dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSeeds, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// Same seed, same config -> identical run, down to fault times and window
// rows. The chaos subsystem must not break the repo's determinism invariant.
TEST(ChaosProperty, SameSeedIsDeterministic) {
  auto run = [] {
    harness::FailoverConfig config = chaos_config(42);
    config.schedule = fault::FaultSchedule::random(42, chaos_params());
    return harness::run_failover(config);
  };
  const harness::FailoverResult a = run();
  const harness::FailoverResult b = run();

  EXPECT_EQ(a.published, b.published);
  EXPECT_EQ(a.delivered_unique, b.delivered_unique);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.first_fault, b.first_fault);
  EXPECT_EQ(a.first_suspicion, b.first_suspicion);
  EXPECT_EQ(a.lb_stats.emergency_rebalances, b.lb_stats.emergency_rebalances);
  EXPECT_EQ(a.client_totals.republishes, b.client_totals.republishes);
  EXPECT_EQ(a.liveness.size(), b.liveness.size());
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].time, b.faults[i].time);
    EXPECT_EQ(a.faults[i].kind, b.faults[i].kind);
    EXPECT_EQ(a.faults[i].detail, b.faults[i].detail);
  }
}

// Full fault menu (loss, latency spikes, degraded egress included), no
// reliability layer: the run must complete with traffic still flowing —
// nothing deadlocks, nothing crashes the simulation.
TEST(ChaosProperty, FullFaultMenuNeverWedges) {
  harness::FailoverConfig config = chaos_config(99);
  config.reliability = false;
  fault::FaultSchedule::RandomParams params = chaos_params();
  params.faults = 6;
  params.loss = true;
  params.latency_spikes = true;
  params.degrade = true;
  config.schedule = fault::FaultSchedule::random(99, params);

  const harness::FailoverResult r = harness::run_failover(config);

  ASSERT_FALSE(r.faults.empty());
  EXPECT_GT(r.published, 0u);
  EXPECT_GT(r.delivered_unique, 0u);
  // Whatever was lost, the system came back: the tail windows deliver.
  EXPECT_GT(r.pre_fault_rate, 0.0);
}

}  // namespace
}  // namespace dynamoth
