#include "fault/injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fault/schedule.h"
#include "sim/simulator.h"

namespace dynamoth::fault {
namespace {

/// Recording FaultTarget: applies crash/restart state transitions and logs
/// every call as a readable op string.
struct MockTarget final : FaultTarget {
  std::set<ServerId> live{1, 2, 3, 4};
  std::set<ServerId> down;
  std::vector<std::string> ops;
  std::vector<ServerId> partitioned;
  std::map<ServerId, double> loss_rate;

  [[nodiscard]] std::vector<ServerId> crashable_servers() const override {
    return {live.begin(), live.end()};
  }
  [[nodiscard]] std::vector<ServerId> crashed_servers() const override {
    return {down.begin(), down.end()};
  }
  [[nodiscard]] std::vector<ServerId> live_servers() const override {
    return {live.begin(), live.end()};
  }
  void crash_server(ServerId s) override {
    live.erase(s);
    down.insert(s);
    ops.push_back("crash " + std::to_string(s));
  }
  void restart_server(ServerId s) override {
    down.erase(s);
    live.insert(s);
    ops.push_back("restart " + std::to_string(s));
  }
  void crash_dispatcher(ServerId s) override { ops.push_back("dcrash " + std::to_string(s)); }
  void restart_dispatcher(ServerId s) override {
    ops.push_back("drestart " + std::to_string(s));
  }
  void partition(const std::vector<ServerId>& group) override {
    partitioned = group;
    ops.push_back("partition n=" + std::to_string(group.size()));
  }
  void heal_partition() override {
    partitioned.clear();
    ops.push_back("heal");
  }
  void set_server_loss(ServerId s, double rate) override {
    loss_rate[s] = rate;
    ops.push_back("loss " + std::to_string(s) + " " + std::to_string(rate));
  }
  void set_server_extra_latency(ServerId s, SimTime extra) override {
    ops.push_back("latency " + std::to_string(s) + " " + std::to_string(extra));
  }
  void degrade_egress(ServerId s, double factor) override {
    ops.push_back("degrade " + std::to_string(s) + " " + std::to_string(factor));
  }
  void restore_egress(ServerId s) override { ops.push_back("restore " + std::to_string(s)); }
};

TEST(FaultInjector, ExplicitCrashAutoRestarts) {
  sim::Simulator sim;
  MockTarget target;
  FaultSchedule schedule;
  schedule.crash(seconds(1), 2, seconds(3));
  FaultInjector injector(sim, target, schedule, Rng(1));
  injector.arm();
  sim.run_for(seconds(10));

  ASSERT_EQ(target.ops.size(), 2u);
  EXPECT_EQ(target.ops[0], "crash 2");
  EXPECT_EQ(target.ops[1], "restart 2");
  EXPECT_TRUE(target.down.empty());
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().restarts, 1u);
  EXPECT_EQ(injector.first_fault_time(), seconds(1));

  ASSERT_EQ(injector.log().size(), 2u);
  EXPECT_FALSE(injector.log()[0].reversal);
  EXPECT_TRUE(injector.log()[1].reversal);
  EXPECT_EQ(injector.log()[1].time, seconds(4));
}

TEST(FaultInjector, PermanentCrashHasNoReversal) {
  sim::Simulator sim;
  MockTarget target;
  FaultSchedule schedule;
  schedule.crash(seconds(1), 3);  // outage 0: stays down
  FaultInjector injector(sim, target, schedule, Rng(1));
  injector.arm();
  sim.run_for(seconds(30));
  EXPECT_EQ(target.ops, std::vector<std::string>{"crash 3"});
  EXPECT_TRUE(target.down.contains(3));
}

TEST(FaultInjector, RandomPicksAreSeedDeterministic) {
  FaultSchedule schedule;
  schedule.crash(seconds(1), kAnyServer, seconds(2));
  schedule.loss(seconds(2), 0.25, seconds(3));
  schedule.partition(seconds(4), 2, seconds(3));

  auto run = [&](std::uint64_t seed) {
    sim::Simulator sim;
    MockTarget target;
    FaultInjector injector(sim, target, schedule, Rng(seed));
    injector.arm();
    sim.run_for(seconds(20));
    return target.ops;
  };

  EXPECT_EQ(run(7), run(7));
  // A different seed picks different victims at least sometimes; schedule
  // shape (op kinds and counts) stays fixed.
  EXPECT_EQ(run(7).size(), run(8).size());
}

TEST(FaultInjector, ImpossibleEventsAreSkippedNotFatal) {
  sim::Simulator sim;
  MockTarget target;
  target.live.clear();  // nothing to crash, nothing to partition
  FaultSchedule schedule;
  schedule.crash(seconds(1));
  schedule.restart(seconds(2));  // nothing is down either
  schedule.partition(seconds(3), 1, seconds(1));
  FaultInjector injector(sim, target, schedule, Rng(1));
  injector.arm();
  sim.run_for(seconds(10));
  EXPECT_TRUE(target.ops.empty());
  EXPECT_EQ(injector.stats().skipped, 3u);
  EXPECT_EQ(injector.first_fault_time(), -1);
}

TEST(FaultInjector, ExplicitTargetMustBeEligible) {
  sim::Simulator sim;
  MockTarget target;
  FaultSchedule schedule;
  schedule.crash(seconds(1), 99);  // not a live server
  FaultInjector injector(sim, target, schedule, Rng(1));
  injector.arm();
  sim.run_for(seconds(5));
  EXPECT_TRUE(target.ops.empty());
  EXPECT_EQ(injector.stats().skipped, 1u);
}

TEST(FaultInjector, PartitionIsolatesDistinctServersThenHeals) {
  sim::Simulator sim;
  MockTarget target;
  FaultSchedule schedule;
  schedule.partition(seconds(1), 2, seconds(4));
  FaultInjector injector(sim, target, schedule, Rng(3));
  injector.arm();
  sim.run_for(seconds(2));
  ASSERT_EQ(target.partitioned.size(), 2u);
  EXPECT_NE(target.partitioned[0], target.partitioned[1]);
  sim.run_for(seconds(10));
  EXPECT_TRUE(target.partitioned.empty());
  EXPECT_EQ(injector.stats().partitions, 1u);
  EXPECT_EQ(injector.stats().heals, 1u);
}

TEST(FaultInjector, LossPeriodClearsItself) {
  sim::Simulator sim;
  MockTarget target;
  FaultSchedule schedule;
  schedule.loss(seconds(1), 0.4, seconds(2), 2);
  FaultInjector injector(sim, target, schedule, Rng(1));
  injector.arm();
  sim.run_for(seconds(2));
  EXPECT_DOUBLE_EQ(target.loss_rate[2], 0.4);
  sim.run_for(seconds(10));
  EXPECT_DOUBLE_EQ(target.loss_rate[2], 0.0);
}

TEST(FaultSchedule, RandomIsSeedDeterministic) {
  FaultSchedule::RandomParams params;
  params.faults = 6;
  const FaultSchedule a = FaultSchedule::random(11, params);
  const FaultSchedule b = FaultSchedule::random(11, params);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_EQ(a.events.size(), 6u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].duration, b.events[i].duration);
  }
  const FaultSchedule c = FaultSchedule::random(12, params);
  bool differs = false;
  for (std::size_t i = 0; i < c.events.size(); ++i) {
    differs = differs || c.events[i].at != a.events[i].at;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, RandomEventsRespectHorizonAndOrdering) {
  FaultSchedule::RandomParams params;
  params.faults = 20;
  params.horizon = seconds(30);
  const FaultSchedule s = FaultSchedule::random(5, params);
  SimTime prev = 0;
  for (const FaultEvent& e : s.events) {
    EXPECT_GE(e.at, prev);  // sorted
    prev = e.at;
    EXPECT_LE(e.at, seconds(30));
    EXPECT_GT(e.duration, 0);  // random faults always revert
    EXPECT_LE(e.at + e.duration, params.horizon + millis(500));
  }
}

}  // namespace
}  // namespace dynamoth::fault
