#include "fault/failure_detector.h"

#include <gtest/gtest.h>

namespace dynamoth::fault {
namespace {

TEST(FailureDetector, TimeoutModeSuspectsAfterSilence) {
  FailureDetector::Config config;
  config.timeout = seconds(5);
  FailureDetector det(config);

  det.watch(1, seconds(0));
  for (int t = 1; t <= 4; ++t) det.heartbeat(1, seconds(t));

  EXPECT_FALSE(det.suspected(1, seconds(8)));   // silence 4s < timeout
  EXPECT_FALSE(det.suspected(1, seconds(9)));   // exactly at the bound
  EXPECT_TRUE(det.suspected(1, seconds(9) + 1));
  EXPECT_EQ(det.silence(1, seconds(10)), seconds(6));
}

TEST(FailureDetector, WatchCountsAsFirstHeartbeat) {
  FailureDetector det;
  det.watch(7, seconds(100));
  // A fresh server gets the full grace period even if it never reported.
  EXPECT_FALSE(det.suspected(7, seconds(104)));
  EXPECT_TRUE(det.suspected(7, seconds(106)));
}

TEST(FailureDetector, HeartbeatClearsSuspicion) {
  FailureDetector det;
  det.watch(1, 0);
  ASSERT_TRUE(det.suspected(1, seconds(6)));
  det.heartbeat(1, seconds(6));
  EXPECT_FALSE(det.suspected(1, seconds(7)));
}

TEST(FailureDetector, ForgetStopsWatching) {
  FailureDetector det;
  det.watch(1, 0);
  det.forget(1);
  EXPECT_FALSE(det.watching(1));
  EXPECT_FALSE(det.suspected(1, seconds(60)));
  EXPECT_TRUE(det.suspects(seconds(60)).empty());
}

TEST(FailureDetector, SuspectsAreAscendingAndExhaustive) {
  FailureDetector det;
  det.watch(9, 0);
  det.watch(3, 0);
  det.watch(5, 0);
  det.heartbeat(5, seconds(4));  // stays fresh
  const std::vector<ServerId> suspects = det.suspects(seconds(6));
  ASSERT_EQ(suspects.size(), 2u);
  EXPECT_EQ(suspects[0], 3u);
  EXPECT_EQ(suspects[1], 9u);
}

TEST(FailureDetector, PhiAccrualAdaptsToRegularHeartbeats) {
  FailureDetector::Config config;
  config.phi_accrual = true;
  config.phi_threshold = 8.0;
  config.timeout = seconds(5);
  FailureDetector det(config);

  det.watch(1, 0);
  for (int t = 1; t <= 10; ++t) det.heartbeat(1, seconds(t));

  // A silence comparable to the observed interval is unremarkable...
  EXPECT_FALSE(det.suspected(1, seconds(11)));
  EXPECT_LT(det.phi(1, seconds(11)), 8.0);
  // ...but several missed beats push phi past any sane threshold.
  EXPECT_GT(det.phi(1, seconds(20)), 8.0);
  EXPECT_TRUE(det.suspected(1, seconds(20)));
}

TEST(FailureDetector, PhiAccrualFallsBackToTimeoutWithoutSamples) {
  FailureDetector::Config config;
  config.phi_accrual = true;
  config.timeout = seconds(5);
  FailureDetector det(config);

  det.watch(1, 0);
  det.heartbeat(1, seconds(1));  // only one interval sample (< 3)
  EXPECT_FALSE(det.suspected(1, seconds(5)));
  EXPECT_TRUE(det.suspected(1, seconds(7)));
}

}  // namespace
}  // namespace dynamoth::fault
