#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace dynamoth {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ForkByNameIsIndependentAndStable) {
  Rng root(42);
  Rng f1 = root.fork("latency");
  Rng f2 = root.fork("latency");
  Rng f3 = root.fork("players");
  EXPECT_EQ(f1.next(), f2.next());
  EXPECT_NE(Rng(42).fork("latency").next(), f3.next());
}

TEST(Rng, ForkByIndexIsIndependentAndStable) {
  Rng root(42);
  EXPECT_EQ(root.fork(std::uint64_t{7}).next(), root.fork(std::uint64_t{7}).next());
  EXPECT_NE(root.fork(std::uint64_t{7}).next(), root.fork(std::uint64_t{8}).next());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(9), b(9);
  (void)a.fork("x");
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(6);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(9);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(40.0);
  EXPECT_NEAR(sum / n, 40.0, 1.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  double sum = 0, sq = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(11);
  const int n = 100'001;
  std::vector<double> xs(n);
  for (int i = 0; i < n; ++i) xs[static_cast<std::size_t>(i)] = rng.lognormal(std::log(40.0), 0.5);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[static_cast<std::size_t>(n / 2)], 40.0, 1.5);
}

}  // namespace
}  // namespace dynamoth
