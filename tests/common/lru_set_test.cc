#include "common/lru_set.h"

#include <gtest/gtest.h>

#include "common/types.h"

namespace dynamoth {
namespace {

TEST(LruSet, InsertReturnsTrueOnlyForNewValues) {
  LruSet<int> set(4);
  EXPECT_TRUE(set.insert(1));
  EXPECT_TRUE(set.insert(2));
  EXPECT_FALSE(set.insert(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(LruSet, EvictsLeastRecentlyUsed) {
  LruSet<int> set(3);
  set.insert(1);
  set.insert(2);
  set.insert(3);
  set.insert(4);  // evicts 1
  EXPECT_FALSE(set.contains(1));
  EXPECT_TRUE(set.contains(2));
  EXPECT_TRUE(set.contains(3));
  EXPECT_TRUE(set.contains(4));
}

TEST(LruSet, ReinsertRefreshesRecency) {
  LruSet<int> set(3);
  set.insert(1);
  set.insert(2);
  set.insert(3);
  set.insert(1);  // refresh 1 -> 2 is now LRU
  set.insert(4);  // evicts 2
  EXPECT_TRUE(set.contains(1));
  EXPECT_FALSE(set.contains(2));
}

TEST(LruSet, CapacityOneKeepsOnlyLatest) {
  LruSet<int> set(1);
  set.insert(1);
  set.insert(2);
  EXPECT_FALSE(set.contains(1));
  EXPECT_TRUE(set.contains(2));
  EXPECT_EQ(set.size(), 1u);
}

TEST(LruSet, ZeroCapacityIsPromotedToOne) {
  LruSet<int> set(0);
  EXPECT_EQ(set.capacity(), 1u);
  EXPECT_TRUE(set.insert(5));
  EXPECT_TRUE(set.contains(5));
}

TEST(LruSet, ClearEmptiesEverything) {
  LruSet<int> set(4);
  set.insert(1);
  set.insert(2);
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(1));
  EXPECT_TRUE(set.insert(1));
}

TEST(LruSet, WorksWithMessageIds) {
  LruSet<MessageId> set(1000);
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_TRUE(set.insert(MessageId{1, i}));
    EXPECT_FALSE(set.insert(MessageId{1, i}));
  }
  // Same seq, different origin is a different message.
  EXPECT_TRUE(set.insert(MessageId{2, 10}));
}

TEST(LruSet, DedupWindowSlides) {
  LruSet<MessageId> set(100);
  for (std::uint64_t i = 0; i < 250; ++i) set.insert(MessageId{1, i});
  EXPECT_EQ(set.size(), 100u);
  EXPECT_FALSE(set.contains(MessageId{1, 0}));
  EXPECT_TRUE(set.contains(MessageId{1, 249}));
}

}  // namespace
}  // namespace dynamoth
