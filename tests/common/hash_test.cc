#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace dynamoth {
namespace {

TEST(Hash, Fnv1aIsStable) {
  // Known FNV-1a 64 test vector.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8Cull);
}

TEST(Hash, Fnv1aDistinguishesSimilarStrings) {
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 1000; ++i) hashes.insert(fnv1a64("tile:" + std::to_string(i)));
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(Hash, Mix64AvalanchesLowBits) {
  // Sequential inputs must not produce sequential outputs.
  std::set<std::uint64_t> high_bytes;
  for (std::uint64_t i = 0; i < 256; ++i) high_bytes.insert(mix64(i) >> 56);
  EXPECT_GT(high_bytes.size(), 150u);  // spread over most of the byte range
}

TEST(Hash, Mix64IsInjectiveOnSample) {
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 100'000; ++i) out.insert(mix64(i));
  EXPECT_EQ(out.size(), 100'000u);
}

TEST(Hash, CombineDependsOnBothInputs) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(1, 2), hash_combine(1, 3));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

TEST(Hash, ConstexprUsable) {
  static_assert(fnv1a64("channel") != 0);
  static_assert(mix64(42) != 42);
  SUCCEED();
}

}  // namespace
}  // namespace dynamoth
