// Tests for the small-buffer move-only callable used by the simulator's
// event slots and the network's delivery callbacks.
#include "common/small_function.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

namespace dynamoth {
namespace {

using Fn = SmallFunction<int(), 48>;

TEST(SmallFunction, EmptyAndBool) {
  Fn f;
  EXPECT_FALSE(f);
  f = [] { return 7; };
  ASSERT_TRUE(f);
  EXPECT_EQ(f(), 7);
  f = nullptr;
  EXPECT_FALSE(f);
}

TEST(SmallFunction, InlineCaptureInvokes) {
  int hits = 0;
  SmallFunction<void(), 48> f = [&hits] { ++hits; };
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFunction, MoveTransfersOwnership) {
  Fn a = [] { return 11; };
  Fn b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  ASSERT_TRUE(b);
  EXPECT_EQ(b(), 11);
  Fn c;
  c = std::move(b);
  EXPECT_EQ(c(), 11);
}

TEST(SmallFunction, LargeCaptureSpillsToHeapAndStillWorks) {
  std::array<int, 64> big{};  // 256 bytes: cannot fit the 48-byte buffer
  big[63] = 42;
  Fn f = [big] { return big[63]; };
  EXPECT_EQ(f(), 42);
  Fn g = std::move(f);
  EXPECT_EQ(g(), 42);
}

TEST(SmallFunction, NonTrivialCaptureIsDestroyed) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> watch = token;
  {
    SmallFunction<int(), 48> f = [token] { return *token; };
    token.reset();
    EXPECT_EQ(f(), 5);
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());  // destructor ran on the captured state
}

TEST(SmallFunction, ReassignmentDestroysOldTarget) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  SmallFunction<int(), 48> f = [token] { return *token; };
  token.reset();
  f = [] { return 2; };
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(f(), 2);
}

TEST(SmallFunction, ArgumentsArePassedThrough) {
  SmallFunction<int(int, int), 48> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

}  // namespace
}  // namespace dynamoth
