// Tests for the global channel-name interner. The table is a process-wide
// singleton, so these tests use names unique to this file and assert
// relative properties (idempotence, stability) rather than absolute ids.
#include "common/channel_table.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dynamoth {
namespace {

TEST(ChannelTable, InternIsIdempotent) {
  const ChannelId a = intern_channel("ctt:idem:x");
  const ChannelId b = intern_channel("ctt:idem:x");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kInvalidChannelId);
}

TEST(ChannelTable, DistinctNamesGetDistinctIds) {
  const ChannelId a = intern_channel("ctt:distinct:a");
  const ChannelId b = intern_channel("ctt:distinct:b");
  EXPECT_NE(a, b);
}

TEST(ChannelTable, IdsAndNamesAreStableAcrossGrowth) {
  // Interning many more names must not invalidate earlier ids or the
  // name() strings they map back to.
  const ChannelId early = intern_channel("ctt:stable:early");
  const std::string early_name = ChannelTable::instance().name(early);
  std::vector<ChannelId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(intern_channel("ctt:stable:bulk:" + std::to_string(i)));
  }
  EXPECT_EQ(intern_channel("ctt:stable:early"), early);
  EXPECT_EQ(ChannelTable::instance().name(early), early_name);
  EXPECT_EQ(ChannelTable::instance().name(ids[0]), "ctt:stable:bulk:0");
  EXPECT_EQ(intern_channel("ctt:stable:bulk:4999"), ids.back());
}

TEST(ChannelTable, FindDoesNotIntern) {
  const std::size_t before = ChannelTable::instance().size();
  EXPECT_EQ(ChannelTable::instance().find("ctt:never-interned-name"), kInvalidChannelId);
  EXPECT_EQ(ChannelTable::instance().size(), before);
  const ChannelId id = intern_channel("ctt:find:present");
  EXPECT_EQ(ChannelTable::instance().find("ctt:find:present"), id);
}

TEST(ChannelTable, ControlFlagIsCachedAtInternTime) {
  const ChannelId ctl = intern_channel("@ctl:ctt:flag");
  const ChannelId data = intern_channel("ctt:flag:data");
  EXPECT_TRUE(ChannelTable::instance().is_control(ctl));
  EXPECT_FALSE(ChannelTable::instance().is_control(data));
  // Prefix must anchor at the start of the name.
  EXPECT_FALSE(ChannelTable::instance().is_control(intern_channel("x@ctl:ctt:mid")));
}

}  // namespace
}  // namespace dynamoth
