// Ablation A1 — does channel-level (micro) balancing matter?
//
// DESIGN.md calls out the two-level balancer as the paper's core design
// choice. This ablation runs a hot broadcast channel (many subscribers, low
// publication rate — the all-publishers case) under the full Dynamoth
// balancer with channel-level replication enabled vs disabled, system-level
// balancing active in both. Without replication the owner server's fan-out
// saturates no matter how the macro balancer shuffles channels, because one
// channel cannot be split by migration.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "harness/cluster.h"
#include "harness/probes.h"
#include "metrics/series.h"

namespace {

using namespace dynamoth;

struct RunResult {
  double mean_ms = 0;
  double p99_ms = 0;
  double max_lr = 0;
  double replicas = 1;
};

RunResult run_point(int subscribers, bool enable_replication, std::uint64_t seed) {
  harness::ClusterConfig config;
  config.seed = seed;
  config.initial_servers = 3;
  harness::Cluster cluster(config);

  core::DynamothLoadBalancer::Config lb_config;
  lb_config.t_wait = seconds(10);
  lb_config.enable_replication = enable_replication;
  lb_config.all_pubs_threshold = 30;    // subscribers per publication/s
  lb_config.subscriber_threshold = 150;
  lb_config.max_servers = 3;            // fixed fleet: isolate micro balancing
  auto& lb = cluster.use_dynamoth(lb_config);

  const Channel channel = "world:events";
  // Warmup samples go to a throwaway probe; the measured window gets a
  // fresh one (swapped via pointer so handlers need no rebinding).
  harness::ResponseProbe warmup_probe, measured_probe;
  harness::ResponseProbe* probe = &warmup_probe;
  for (int i = 0; i < subscribers; ++i) {
    auto& sub = cluster.add_client();
    sub.subscribe(channel, [&probe, &cluster](const ps::EnvelopePtr& env) {
      probe->record(cluster.sim().now() - env->publish_time);
    });
  }
  auto& publisher = cluster.add_client();
  sim::PeriodicTask traffic(cluster.sim(), millis(250), [&] { publisher.publish(channel, 160); });
  traffic.start();

  cluster.sim().run_for(seconds(40));  // let the balancer react
  probe = &measured_probe;
  double max_lr = 0;
  sim::PeriodicTask lr_probe(cluster.sim(), seconds(1), [&] {
    max_lr = std::max(max_lr, lb.max_load_ratio().second);
  });
  lr_probe.start();
  cluster.sim().run_for(seconds(30));
  traffic.stop();
  cluster.sim().run_for(seconds(5));

  RunResult result;
  result.mean_ms = measured_probe.overall_mean_ms();
  result.p99_ms = measured_probe.percentile_ms(99);
  result.max_lr = max_lr;
  result.replicas = static_cast<double>(
      lb.current_plan()->resolve(channel, *cluster.base_ring()).servers.size());
  return result;
}

}  // namespace

int main() {
  std::printf("== Ablation A1: channel-level (micro) balancing on vs off ==\n");
  std::printf("   hot broadcast channel, 4 msg/s, fixed 3-server fleet\n\n");

  dynamoth::metrics::Series series({"subscribers", "rt_ms_micro_on", "p99_ms_micro_on",
                                    "replicas_on", "rt_ms_micro_off", "p99_ms_micro_off",
                                    "max_lr_off"});
  for (int subs = 100; subs <= 500; subs += 100) {
    const RunResult on = run_point(subs, true, 500 + subs);
    const RunResult off = run_point(subs, false, 600 + subs);
    series.add_row({static_cast<double>(subs), on.mean_ms, on.p99_ms, on.replicas,
                    off.mean_ms, off.p99_ms, off.max_lr});
  }
  series.print_table(std::cout);
  series.save_csv("ablation_replication.csv");
  std::printf("\n(series saved to ablation_replication.csv)\n");
  return 0;
}
