// Placement-policy shoot-out: every policy in src/placement replays the
// Figure-5 client ramp, the Figure-7 elasticity cycle, and a server-crash
// schedule, under otherwise identical configuration. The point is a
// like-for-like comparison of what each placement strategy trades:
//
//   greedy        the paper's Algorithm 2 — reactive, migrates on demand
//   bounded-load  CH with bounded loads — sticky placements, spill on cap
//   peak-ewma     decayed-peak homing — repels load from recently hot servers
//   maglev        table-driven stateless mapping — placement is membership
//
// Outputs:
//   fig_placement.csv            one row per (workload, policy), same columns
//   fig_placement.json           the same summary via the metrics registry
//   fig_placement_audit.txt      per-run rebalance audit timelines
//
// `--smoke` shortens every workload (CI); `--policy=<name>` restricts to one.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/failover.h"
#include "mammoth/experiments.h"
#include "obs/metrics_registry.h"
#include "placement/policy.h"

namespace {

using namespace dynamoth;
namespace exp = mammoth::exp;

struct RunRow {
  std::string workload;
  std::string policy;
  double p99_ms = 0;
  double mean_ms = 0;
  std::uint64_t plans = 0;       // plans actually published
  std::uint64_t moves = 0;       // channel moves across all plans (churn)
  double peak_servers = 0;
  double server_hours = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t emergency = 0;
  std::uint64_t lost = 0;        // crash workload only
  std::uint64_t delivered = 0;
};

std::uint64_t count_plans(const obs::RebalanceAuditLog& audit) {
  std::uint64_t n = 0;
  for (const auto& rec : audit.records()) {
    if (rec.plan_id != 0) ++n;
  }
  return n;
}

std::uint64_t count_moves(const obs::RebalanceAuditLog& audit) {
  std::uint64_t n = 0;
  for (const auto& rec : audit.records()) n += rec.moves.size();
  return n;
}

RunRow run_game(const std::string& workload, placement::PolicyKind kind,
                exp::GameExperimentConfig config, std::ofstream& audit_out) {
  config.dynamoth.placement.kind = kind;
  const exp::GameExperimentResult r = run_game_experiment(config);

  RunRow row;
  row.workload = workload;
  row.policy = placement::to_string(kind);
  row.p99_ms = static_cast<double>(r.rtt_us.percentile(99)) / 1000.0;
  row.mean_ms = r.rtt_us.mean() / 1000.0;
  row.plans = count_plans(r.audit);
  row.moves = count_moves(r.audit);
  row.peak_servers = r.peak_servers;
  row.server_hours = r.server_hours;
  row.control_bytes = r.control_bytes;
  row.delivered = r.total_updates;

  audit_out << "==== " << workload << " / " << row.policy << " ====\n";
  r.audit.write_timeline(audit_out);
  audit_out << '\n';
  return row;
}

RunRow run_crash(placement::PolicyKind kind, bool smoke, std::ofstream& audit_out) {
  harness::FailoverConfig config;
  config.seed = 7;
  fault::FaultSchedule crash;
  crash.crash(seconds(20));
  config.schedule = crash;
  if (smoke) {
    config.duration = seconds(35);
    config.drain = seconds(15);
  }
  config.placement.kind = kind;
  const harness::FailoverResult r = run_failover(config);

  RunRow row;
  row.workload = "crash";
  row.policy = placement::to_string(kind);
  row.p99_ms = static_cast<double>(r.delivery_us.percentile(99)) / 1000.0;
  row.mean_ms = r.delivery_us.mean() / 1000.0;
  row.plans = r.lb_stats.plans_generated;
  row.moves = r.lb_stats.channels_migrated;
  row.peak_servers = static_cast<double>(config.servers);  // fixed fleet
  row.emergency = r.lb_stats.emergency_rebalances;
  row.lost = r.lost;
  row.delivered = r.delivered_unique;

  audit_out << "==== crash / " << row.policy << " ====\n"
            << r.audit_timeline << '\n';
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--policy=", 9) == 0) only = argv[i] + 9;
  }

  std::vector<placement::PolicyKind> kinds;
  for (placement::PolicyKind kind :
       {placement::PolicyKind::kGreedy, placement::PolicyKind::kBoundedLoad,
        placement::PolicyKind::kPeakEwma, placement::PolicyKind::kMaglev}) {
    if (only.empty() || only == placement::to_string(kind)) kinds.push_back(kind);
  }
  if (kinds.empty()) {
    std::fprintf(stderr, "unknown --policy=%s\n", only.c_str());
    return 2;
  }

  // Figure-5 ramp (paper V-D): 120 players joining toward 1200.
  exp::GameExperimentConfig fig5 = exp::default_game_experiment();
  fig5.seed = 77;
  fig5.schedule = {{seconds(0), 120}, {seconds(60), 120}, {seconds(420), 1200}};
  fig5.duration = seconds(480);
  fig5.sample_interval = seconds(10);
  if (smoke) {
    fig5.schedule = {{seconds(0), 120}, {seconds(20), 120}, {seconds(90), 500}};
    fig5.duration = seconds(110);
  }

  // Figure-7 elasticity (paper V-E): ramp to 800, drop to 200, climb back.
  exp::GameExperimentConfig fig7 = exp::default_game_experiment();
  fig7.seed = 99;
  fig7.schedule = {{seconds(0), 50},   {seconds(240), 800}, {seconds(300), 800},
                   {seconds(330), 200}, {seconds(420), 200}, {seconds(540), 580},
                   {seconds(630), 580}};
  fig7.duration = seconds(630);
  fig7.sample_interval = seconds(10);
  if (smoke) {
    fig7.schedule = {{seconds(0), 50},  {seconds(40), 400}, {seconds(60), 400},
                     {seconds(70), 100}, {seconds(100), 100}, {seconds(130), 300}};
    fig7.duration = seconds(140);
  }

  std::ofstream audit("fig_placement_audit.txt");
  std::vector<RunRow> rows;
  for (placement::PolicyKind kind : kinds) {
    std::printf("-- fig5-ramp / %s --\n", placement::to_string(kind));
    rows.push_back(run_game("fig5-ramp", kind, fig5, audit));
    std::printf("-- fig7-elastic / %s --\n", placement::to_string(kind));
    rows.push_back(run_game("fig7-elastic", kind, fig7, audit));
    std::printf("-- crash / %s --\n", placement::to_string(kind));
    rows.push_back(run_crash(kind, smoke, audit));
  }

  std::ofstream csv("fig_placement.csv");
  csv << "workload,policy,p99_ms,mean_ms,plans,moves,peak_servers,server_hours,"
         "control_bytes,emergency_rebalances,lost,delivered\n";
  obs::MetricsRegistry reg;
  for (const RunRow& r : rows) {
    char line[256];
    std::snprintf(line, sizeof line, "%s,%s,%.3f,%.3f,%llu,%llu,%.0f,%.4f,%llu,%llu,%llu,%llu\n",
                  r.workload.c_str(), r.policy.c_str(), r.p99_ms, r.mean_ms,
                  static_cast<unsigned long long>(r.plans),
                  static_cast<unsigned long long>(r.moves), r.peak_servers, r.server_hours,
                  static_cast<unsigned long long>(r.control_bytes),
                  static_cast<unsigned long long>(r.emergency),
                  static_cast<unsigned long long>(r.lost),
                  static_cast<unsigned long long>(r.delivered));
    csv << line;
    const std::string prefix = r.workload + "." + r.policy + ".";
    reg.gauge(prefix + "p99_ms").set(r.p99_ms);
    reg.gauge(prefix + "mean_ms").set(r.mean_ms);
    reg.gauge(prefix + "plans").set(static_cast<double>(r.plans));
    reg.gauge(prefix + "moves").set(static_cast<double>(r.moves));
    reg.gauge(prefix + "peak_servers").set(r.peak_servers);
    reg.gauge(prefix + "server_hours").set(r.server_hours);
    reg.gauge(prefix + "lost").set(static_cast<double>(r.lost));
  }
  reg.save_json("fig_placement.json");

  std::printf("\n%-14s %-13s %9s %9s %7s %7s %6s %8s %6s\n", "workload", "policy", "p99_ms",
              "mean_ms", "plans", "moves", "peak", "srv_hrs", "lost");
  for (const RunRow& r : rows) {
    std::printf("%-14s %-13s %9.2f %9.2f %7llu %7llu %6.0f %8.3f %6llu\n", r.workload.c_str(),
                r.policy.c_str(), r.p99_ms, r.mean_ms,
                static_cast<unsigned long long>(r.plans),
                static_cast<unsigned long long>(r.moves), r.peak_servers, r.server_hours,
                static_cast<unsigned long long>(r.lost));
  }
  std::printf("(summary: fig_placement.csv / fig_placement.json | audits: "
              "fig_placement_audit.txt)\n");
  return 0;
}
