// Ablation A4 — CPU-aware balancing (the paper's future work, VII).
//
// "we are looking at how we could integrate CPU load into our load balancing
// algorithms for environments where CPU is a constrained resource". This
// ablation runs a CPU-bound, bandwidth-light workload (large fan-outs of
// tiny messages, starting from 3 servers) and compares the shipped bandwidth-only
// balancer against the cpu_aware extension.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "harness/cluster.h"
#include "harness/probes.h"
#include "metrics/series.h"

namespace {

using namespace dynamoth;

struct RunResult {
  double rt_mean_ms = 0;
  double rt_p99_ms = 0;
  double migrated = 0;
  double owners = 0;   // distinct servers owning hot channels at the end
  double servers = 0;  // fleet size at the end
};

RunResult run(int subscribers_per_channel, bool cpu_aware, std::uint64_t seed) {
  harness::ClusterConfig config;
  config.seed = seed;
  config.initial_servers = 3;
  config.server_capacity = 20e6;  // bandwidth never binds: CPU is the story
  harness::Cluster cluster(config);

  core::DynamothLoadBalancer::Config lb_config;
  lb_config.t_wait = seconds(10);
  lb_config.max_servers = 6;
  lb_config.cpu_aware = cpu_aware;
  lb_config.cpu_high = 0.7;
  lb_config.cpu_safe = 0.5;
  auto& lb = cluster.use_dynamoth(lb_config);

  constexpr int kChannels = 6;
  harness::ResponseProbe warmup, measured;
  harness::ResponseProbe* probe = &warmup;
  std::vector<std::unique_ptr<sim::PeriodicTask>> feeds;
  for (int ch = 0; ch < kChannels; ++ch) {
    const Channel c = "alerts" + std::to_string(ch);
    for (int s = 0; s < subscribers_per_channel; ++s) {
      cluster.add_client().subscribe(c, [&probe, &cluster](const ps::EnvelopePtr& env) {
        probe->record(cluster.sim().now() - env->publish_time);
      });
    }
    auto* p = &cluster.add_client();
    feeds.push_back(std::make_unique<sim::PeriodicTask>(cluster.sim(), millis(25),
                                                        [p, c] { p->publish(c, 30); }));
    feeds.back()->start();
  }

  cluster.sim().run_for(seconds(50));  // let the balancer act
  probe = &measured;
  cluster.sim().run_for(seconds(30));

  RunResult result;
  result.rt_mean_ms = measured.overall_mean_ms();
  result.rt_p99_ms = measured.percentile_ms(99);
  result.migrated = static_cast<double>(lb.stats().channels_migrated);
  std::set<ServerId> owners;
  for (int ch = 0; ch < kChannels; ++ch) {
    owners.insert(lb.current_plan()
                      ->resolve("alerts" + std::to_string(ch), *cluster.base_ring())
                      .primary());
  }
  result.owners = static_cast<double>(owners.size());
  result.servers = static_cast<double>(cluster.active_servers());
  return result;
}

}  // namespace

int main() {
  std::printf("== Ablation A4: CPU-aware balancing (paper future work VII) ==\n");
  std::printf("   6 channels of tiny high-fan-out messages; 3 fixed servers\n\n");

  dynamoth::metrics::Series series({"subs_per_channel", "rt_ms_bw_only", "p99_ms_bw_only",
                                    "servers_bw_only", "rt_ms_cpu_aware", "p99_ms_cpu_aware",
                                    "servers_cpu_aware", "migrations_cpu_aware"});
  for (int subs = 40; subs <= 100; subs += 20) {
    const RunResult off = run(subs, false, 9100 + subs);
    const RunResult on = run(subs, true, 9200 + subs);
    series.add_row({static_cast<double>(subs), off.rt_mean_ms, off.rt_p99_ms, off.servers,
                    on.rt_mean_ms, on.rt_p99_ms, on.servers, on.migrated});
  }
  series.print_table(std::cout);
  series.save_csv("ablation_cpu_aware.csv");
  std::printf("\n(series saved to ablation_cpu_aware.csv)\n");
  return 0;
}
