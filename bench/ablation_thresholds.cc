// Ablation A3 — sensitivity to the LR_high / LR_safe thresholds.
//
// The paper sets its load-ratio thresholds empirically (Section III-B4) and
// suggests auto-tuning as future work. This ablation sweeps the
// (LR_high, LR_safe) pair on the mid-size game workload and reports the
// fleet size used, response-time percentiles, rebalance count and drops —
// the cost/quality trade-off the thresholds encode: aggressive (low)
// thresholds buy latency headroom with more servers and more churn.
#include <cstdio>
#include <iostream>

#include "mammoth/experiments.h"

int main() {
  using namespace dynamoth;
  namespace exp = mammoth::exp;

  std::printf("== Ablation A3: LR_high / LR_safe threshold sweep ==\n");
  std::printf("   400 players, up to 8 servers, 240 s\n\n");

  struct Pair {
    double high, safe;
  };
  const Pair pairs[] = {{0.95, 0.85}, {0.85, 0.70}, {0.75, 0.60}, {0.60, 0.45}};

  metrics::Series series({"lr_high", "lr_safe", "peak_servers", "rt_mean_ms", "rt_p99_ms",
                          "rebalances", "peak_max_lr"});
  for (const Pair& pair : pairs) {
    exp::GameExperimentConfig config = exp::default_game_experiment();
    config.seed = 881;
    config.balancer = exp::BalancerKind::kDynamoth;
    config.dynamoth.lr_high = pair.high;
    config.dynamoth.lr_safe = pair.safe;
    config.dynamoth.t_wait = seconds(10);
    config.schedule = {{seconds(0), 60}, {seconds(150), 400}, {seconds(240), 400}};
    config.duration = seconds(240);
    config.sample_interval = seconds(10);

    const exp::GameExperimentResult result = run_game_experiment(config);
    series.add_row({pair.high, pair.safe, result.peak_servers,
                    result.rtt_us.mean() / 1000.0,
                    static_cast<double>(result.rtt_us.percentile(99)) / 1000.0,
                    static_cast<double>(result.events.size()),
                    result.series.column_max("max_lr")});
  }
  series.print_table(std::cout);
  series.save_csv("ablation_thresholds.csv");
  std::printf("\n(series saved to ablation_thresholds.csv)\n");
  return 0;
}
