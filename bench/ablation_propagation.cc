// Ablation A2 — lazy vs eager plan propagation.
//
// The paper argues (Section IV) that pushing every new global plan to every
// client "would create a huge message overhead", and uses lazy, need-to-know
// propagation instead. This ablation runs the same rebalancing-heavy game
// workload twice:
//   lazy  — the shipped protocol (SWITCH + wrong-server corrections);
//   eager — a plan listener broadcasts every changed entry to every client
//           immediately (charged to the balancer node's egress).
// Reported: control-plane bytes/messages from the balancer node, redirect
// counts, and response-time percentiles. Eager trades a large broadcast cost
// for slightly fewer redirects.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "harness/cluster.h"
#include "harness/probes.h"
#include "mammoth/game.h"
#include "metrics/series.h"

namespace {

using namespace dynamoth;

struct RunResult {
  double rt_mean_ms = 0;
  double rt_p99_ms = 0;
  double ctl_msgs = 0;         // balancer-node egress messages
  double ctl_bytes = 0;        // balancer-node egress bytes
  double redirects = 0;        // wrong-server replies across all clients
  double switches = 0;
};

RunResult run(bool eager, std::uint64_t seed) {
  harness::ClusterConfig config;
  config.seed = seed;
  config.initial_servers = 1;
  config.server_capacity = 500e3;  // small servers: plenty of rebalancing
  config.cloud.spawn_delay = seconds(3);
  harness::Cluster cluster(config);

  core::DynamothLoadBalancer::Config lb_config;
  lb_config.t_wait = seconds(10);
  lb_config.max_servers = 6;
  auto& lb = cluster.use_dynamoth(lb_config);

  harness::ResponseProbe probe;
  mammoth::GameConfig game_config;
  game_config.world_size = 600;
  game_config.tiles_per_side = 6;
  mammoth::Game game(cluster, game_config, &probe);

  core::PlanPtr last_plan = core::make_plan_zero();
  if (eager) {
    lb.set_plan_listener([&](const core::PlanPtr& plan, core::RebalanceKind) {
      // Broadcast each changed entry to every client, charging the wire.
      std::vector<std::pair<Channel, core::PlanEntry>> changed;
      for (const auto& [channel, entry] : plan->entries()) {
        const core::PlanEntry* old_entry = last_plan->find(channel);
        if (old_entry == nullptr || !(*old_entry == entry)) changed.emplace_back(channel, entry);
      }
      last_plan = plan;
      for (std::size_t i = 0; i < game.total_players_created(); ++i) {
        auto& client = game.player(i).client();
        for (const auto& [channel, entry] : changed) {
          const std::size_t bytes = 24 + channel.size() + 4 * entry.servers.size();
          cluster.network().send(
              cluster.balancer_node(), client.node(), bytes,
              [&client, channel = channel, entry = entry] {
                client.absorb_entry(channel, entry);
              });
        }
      }
    });
  }

  game.set_population(250);
  cluster.sim().run_for(seconds(180));

  RunResult result;
  result.rt_mean_ms = probe.overall_mean_ms();
  result.rt_p99_ms = probe.percentile_ms(99);
  const auto& counters = cluster.network().counters(cluster.balancer_node());
  result.ctl_msgs = static_cast<double>(counters.messages_sent);
  result.ctl_bytes = static_cast<double>(counters.bytes_sent);
  for (std::size_t i = 0; i < game.total_players_created(); ++i) {
    const auto& stats = game.player(i).client().stats();
    result.redirects += static_cast<double>(stats.wrong_server_replies);
    result.switches += static_cast<double>(stats.switches_followed);
  }
  return result;
}

}  // namespace

int main() {
  std::printf("== Ablation A2: lazy vs eager plan propagation ==\n");
  std::printf("   250 players, small servers (heavy rebalancing), 180 s\n\n");

  dynamoth::metrics::Series series({"mode", "rt_mean_ms", "rt_p99_ms", "balancer_ctl_msgs",
                                    "balancer_ctl_kbytes", "client_redirects",
                                    "client_switches"});
  const RunResult lazy = run(false, 7001);
  const RunResult eager = run(true, 7001);
  series.add_row({0, lazy.rt_mean_ms, lazy.rt_p99_ms, lazy.ctl_msgs, lazy.ctl_bytes / 1000.0,
                  lazy.redirects, lazy.switches});
  series.add_row({1, eager.rt_mean_ms, eager.rt_p99_ms, eager.ctl_msgs,
                  eager.ctl_bytes / 1000.0, eager.redirects, eager.switches});
  std::printf("(mode 0 = lazy, 1 = eager)\n");
  series.print_table(std::cout);
  series.save_csv("ablation_propagation.csv");

  if (lazy.ctl_msgs > 0) {
    std::printf("\neager sends %.1fx the control messages of lazy (%g vs %g)\n",
                eager.ctl_msgs / lazy.ctl_msgs, eager.ctl_msgs, lazy.ctl_msgs);
  }
  std::printf("(series saved to ablation_propagation.csv)\n");
  return 0;
}
