// Google-benchmark microbenchmarks for the hot data-plane and control-plane
// primitives: consistent-hash lookups, plan resolution/copying, message
// dedup, histogram recording, glob matching and raw simulator throughput.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/channel_table.h"
#include "common/lru_set.h"
#include "harness/cluster.h"
#include "common/rng.h"
#include "core/consistent_hash.h"
#include "core/plan.h"
#include "latency/latency_model.h"
#include "mammoth/experiments.h"
#include "mammoth/sharded_experiment.h"
#include "metrics/histogram.h"
#include "net/network.h"
#include "pubsub/server.h"
#include "sim/sharded_engine.h"
#include "sim/simulator.h"

namespace {

using namespace dynamoth;

std::vector<Channel> make_channels(int n) {
  std::vector<Channel> channels;
  channels.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) channels.push_back("tile:" + std::to_string(i % 40) + ":" +
                                                 std::to_string(i / 40));
  return channels;
}

void BM_RingLookup(benchmark::State& state) {
  core::ConsistentHashRing ring(64);
  for (ServerId s = 0; s < static_cast<ServerId>(state.range(0)); ++s) ring.add_server(s);
  const auto channels = make_channels(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.lookup(channels[i++ & 1023]));
  }
}
BENCHMARK(BM_RingLookup)->Arg(1)->Arg(4)->Arg(8);

void BM_RingAddRemoveServer(benchmark::State& state) {
  core::ConsistentHashRing ring(64);
  for (ServerId s = 0; s < 8; ++s) ring.add_server(s);
  for (auto _ : state) {
    ring.add_server(99);
    ring.remove_server(99);
  }
}
BENCHMARK(BM_RingAddRemoveServer);

void BM_PlanResolveExplicit(benchmark::State& state) {
  core::ConsistentHashRing ring(64);
  ring.add_server(0);
  ring.add_server(1);
  core::Plan plan;
  const auto channels = make_channels(static_cast<int>(state.range(0)));
  for (const Channel& c : channels) {
    core::PlanEntry entry;
    entry.servers = {0};
    entry.version = 1;
    plan.set_entry(c, entry);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.resolve(channels[i++ % channels.size()], ring));
  }
}
BENCHMARK(BM_PlanResolveExplicit)->Arg(64)->Arg(1024);

void BM_PlanResolveFallback(benchmark::State& state) {
  core::ConsistentHashRing ring(64);
  for (ServerId s = 0; s < 4; ++s) ring.add_server(s);
  core::Plan plan;  // empty: everything falls back to the ring
  const auto channels = make_channels(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.resolve(channels[i++ & 1023], ring));
  }
}
BENCHMARK(BM_PlanResolveFallback);

void BM_PlanResolveView(benchmark::State& state) {
  // The dispatcher's per-publication path: resolve by interned id, no
  // PlanEntry copy, ring consulted only on fallback misses.
  core::ConsistentHashRing ring(64);
  ring.add_server(0);
  ring.add_server(1);
  core::Plan plan;
  const auto channels = make_channels(static_cast<int>(state.range(0)));
  for (const Channel& c : channels) {
    core::PlanEntry entry;
    entry.servers = {0};
    entry.version = 1;
    plan.set_entry(c, entry);
  }
  std::vector<ChannelId> ids;
  ids.reserve(channels.size());
  for (const Channel& c : channels) ids.push_back(intern_channel(c));
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t k = i++ % ids.size();
    benchmark::DoNotOptimize(plan.resolve_view(ids[k], channels[k], ring).primary());
  }
}
BENCHMARK(BM_PlanResolveView)->Arg(64)->Arg(1024);

void BM_ChannelIntern(benchmark::State& state) {
  // Steady-state interning: every name already known, so this is the cost
  // Envelope::channel_id() pays on the first lookup of a reused channel.
  const auto channels = make_channels(1024);
  for (const Channel& c : channels) intern_channel(c);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(intern_channel(channels[i++ & 1023]));
  }
}
BENCHMARK(BM_ChannelIntern);

void BM_PlanCopy(benchmark::State& state) {
  core::Plan plan;
  for (const Channel& c : make_channels(static_cast<int>(state.range(0)))) {
    core::PlanEntry entry;
    entry.servers = {0, 1, 2};
    entry.version = 3;
    plan.set_entry(c, entry);
  }
  for (auto _ : state) {
    core::Plan copy = plan;  // what every rebalancing round does
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_PlanCopy)->Arg(64)->Arg(512)->Arg(4096);

void BM_DedupLruInsert(benchmark::State& state) {
  LruSet<MessageId> dedup(8192);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedup.insert(MessageId{7, seq++}));
  }
}
BENCHMARK(BM_DedupLruInsert);

void BM_HistogramRecord(benchmark::State& state) {
  metrics::Histogram histogram;
  Rng rng(1);
  for (auto _ : state) {
    histogram.record(static_cast<std::int64_t>(rng.uniform(100, 400000)));
  }
  benchmark::DoNotOptimize(histogram.percentile(99));
}
BENCHMARK(BM_HistogramRecord);

void BM_GlobMatch(benchmark::State& state) {
  const std::string pattern = "tile:*:7";
  const std::string channel = "tile:1234:7";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ps::PubSubServer::glob_match(pattern, channel));
  }
}
BENCHMARK(BM_GlobMatch);

void BM_SimulatorThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    int fired = 0;
    state.ResumeTiming();
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule_at(i, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorThroughput);

void BM_SimulatorCancel(benchmark::State& state) {
  // Timers armed and cancelled before firing: the PeriodicTask / timeout
  // pattern, where most scheduled events never execute.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    ids.reserve(10'000);
    state.ResumeTiming();
    for (int i = 0; i < 10'000; ++i) ids.push_back(sim.schedule_at(i, [] {}));
    for (const sim::EventId& id : ids) sim.cancel(id);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorCancel);

// Server config with drains and buffers opened wide: the benchmarks below
// measure the fan-out machinery, not the congestion model.
ps::PubSubServer::Config unconstrained_server_config() {
  ps::PubSubServer::Config config;
  config.conn_drain_bytes_per_sec = 1e12;
  config.infra_drain_bytes_per_sec = 1e12;
  config.conn_output_buffer_limit = std::size_t{1} << 40;
  config.max_egress_backlog = seconds(1e6);
  return config;
}

ps::EnvelopePtr make_bench_envelope(const Channel& channel, std::uint64_t seq) {
  auto env = ps::make_envelope();
  env->id = MessageId{1, seq};
  env->kind = ps::MsgKind::kData;
  env->channel = channel;
  env->payload_bytes = 128;
  env->publisher = 1;
  env->channel_seq = seq;
  return env;
}

void BM_PublishFanout(benchmark::State& state) {
  // One publication fanned out to N subscriber connections through the full
  // server path: recipient collection, CPU accounting, per-connection drain
  // modelling and delivery scheduling, then the deliveries themselves.
  const auto subs = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  net::Network network(sim, std::make_unique<net::FixedLatencyModel>(millis(1), millis(1)),
                       Rng(7));
  const NodeId server_node = network.add_node({net::NodeKind::kInfrastructure, 1e12});
  ps::PubSubServer server(sim, network, server_node, unconstrained_server_config());

  std::uint64_t got = 0;
  for (std::size_t i = 0; i < subs; ++i) {
    const NodeId cn = network.add_node({net::NodeKind::kClient, 1e9});
    const ps::ConnId c =
        server.open_connection(cn, [&got](const ps::EnvelopePtr&) { ++got; }, nullptr);
    server.handle_subscribe(c, "arena");
  }
  const ps::ConnId pub =
      server.open_connection(network.add_node({net::NodeKind::kClient, 1e9}), nullptr, nullptr);

  auto env = ps::make_envelope();
  env->id = MessageId{1, 1};
  env->kind = ps::MsgKind::kData;
  env->channel = "arena";
  env->payload_bytes = 200;
  env->publisher = 1;

  for (auto _ : state) {
    server.handle_publish(pub, env);
    sim.run();
  }
  benchmark::DoNotOptimize(got);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(subs));
}
BENCHMARK(BM_PublishFanout)->Arg(16)->Arg(256);

void BM_FanoutDense(benchmark::State& state) {
  // The cache-conscious fan-out core: N subscribers on ONE channel, packed 16
  // connections per client node. Past 64 subscribers the SubscriberSet runs
  // in bitmap mode, and the per-destination FanoutBatch sees 16-long
  // same-destination runs instead of alternating node lookups.
  const auto subs = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  net::Network network(sim, std::make_unique<net::FixedLatencyModel>(millis(1), millis(1)),
                       Rng(7));
  const NodeId server_node = network.add_node({net::NodeKind::kInfrastructure, 1e12});
  ps::PubSubServer server(sim, network, server_node, unconstrained_server_config());

  std::uint64_t got = 0;
  NodeId cn = kInvalidNode;
  for (std::size_t i = 0; i < subs; ++i) {
    if (i % 16 == 0) cn = network.add_node({net::NodeKind::kClient, 1e9});
    const ps::ConnId c =
        server.open_connection(cn, [&got](const ps::EnvelopePtr&) { ++got; }, nullptr);
    server.handle_subscribe(c, "fan:dense");
  }
  const ps::ConnId pub =
      server.open_connection(network.add_node({net::NodeKind::kClient, 1e9}), nullptr, nullptr);

  std::uint64_t seq = 0;
  for (auto _ : state) {
    server.handle_publish(pub, make_bench_envelope("fan:dense", ++seq));
    sim.run();
  }
  benchmark::DoNotOptimize(got);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(subs));
}
BENCHMARK(BM_FanoutDense)->Arg(64)->Arg(1024);

void BM_FanoutSparseChannels(benchmark::State& state) {
  // Many small channels, publishes round-robined across them: per-publish
  // cost is dominated by the id-indexed ChannelHot lookup and fan-out setup,
  // not the subscriber walk. This is the workload shape where the old
  // per-channel hash probe paid two cache misses before the first delivery.
  constexpr std::size_t kChannels = 256;
  sim::Simulator sim;
  net::Network network(sim, std::make_unique<net::FixedLatencyModel>(millis(1), millis(1)),
                       Rng(7));
  const NodeId server_node = network.add_node({net::NodeKind::kInfrastructure, 1e12});
  ps::PubSubServer server(sim, network, server_node, unconstrained_server_config());

  std::vector<Channel> channels;
  channels.reserve(kChannels);
  for (std::size_t i = 0; i < kChannels; ++i) channels.push_back("sp:" + std::to_string(i));
  std::uint64_t got = 0;
  const NodeId cn = network.add_node({net::NodeKind::kClient, 1e9});
  for (const Channel& ch : channels) {
    for (int s = 0; s < 2; ++s) {
      const ps::ConnId c =
          server.open_connection(cn, [&got](const ps::EnvelopePtr&) { ++got; }, nullptr);
      server.handle_subscribe(c, ch);
    }
  }
  const ps::ConnId pub =
      server.open_connection(network.add_node({net::NodeKind::kClient, 1e9}), nullptr, nullptr);

  constexpr int kBatch = 64;
  std::uint64_t seq = 0;
  std::size_t next = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      server.handle_publish(pub, make_bench_envelope(channels[next++ % kChannels], ++seq));
    }
    sim.run();
  }
  benchmark::DoNotOptimize(got);
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_FanoutSparseChannels);

void BM_FanoutChurn(benchmark::State& state) {
  // The control-plane half of the fan-out table: membership oscillating
  // across the promote/demote thresholds plus a channel that empties to a
  // tombstoned slot and revives. Steady-state churn reuses slab slots and
  // retained capacities; nothing here should touch the allocator.
  constexpr std::size_t kConns = 96;  // crosses the 64-subscriber promote line
  sim::Simulator sim;
  net::Network network(sim, std::make_unique<net::FixedLatencyModel>(millis(1), millis(1)),
                       Rng(7));
  const NodeId server_node = network.add_node({net::NodeKind::kInfrastructure, 1e12});
  ps::PubSubServer server(sim, network, server_node, unconstrained_server_config());

  const NodeId cn = network.add_node({net::NodeKind::kClient, 1e9});
  std::vector<ps::ConnId> conns;
  conns.reserve(kConns);
  for (std::size_t i = 0; i < kConns; ++i) {
    conns.push_back(server.open_connection(cn, nullptr, nullptr));
  }
  std::int64_t ops = 0;
  for (auto _ : state) {
    for (ps::ConnId c : conns) server.handle_subscribe(c, "fan:osc");  // -> bitmap
    for (std::size_t i = 4; i < kConns; ++i) {
      server.handle_unsubscribe(conns[i], "fan:osc");  // -> vector (hysteresis)
    }
    for (std::size_t i = 1; i < 4; ++i) {
      server.handle_unsubscribe(conns[i], "fan:osc");
    }
    server.handle_unsubscribe(conns[0], "fan:osc");  // empty: tombstoned slot
    ops += static_cast<std::int64_t>(2 * kConns);
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_FanoutChurn);

void BM_FanoutPatternScan(benchmark::State& state) {
  // P live PSUBSCRIBE connections consulted on every publish. All but one
  // pattern miss the published channel; the server's first-byte bucket index
  // never even visits them (the misses all start with 't', the published
  // channel with 'a'), so cost should stay flat as P grows — the 512-pattern
  // point guards exactly that. The one hit keeps the delivery path honest.
  const auto pats = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  net::Network network(sim, std::make_unique<net::FixedLatencyModel>(millis(1), millis(1)),
                       Rng(7));
  const NodeId server_node = network.add_node({net::NodeKind::kInfrastructure, 1e12});
  ps::PubSubServer server(sim, network, server_node, unconstrained_server_config());

  std::uint64_t got = 0;
  const NodeId cn = network.add_node({net::NodeKind::kClient, 1e9});
  for (std::size_t i = 0; i + 1 < pats; ++i) {
    const ps::ConnId c =
        server.open_connection(cn, [&got](const ps::EnvelopePtr&) { ++got; }, nullptr);
    server.handle_psubscribe(c, "tile:" + std::to_string(i) + ":*");  // misses "arena:*"
  }
  const ps::ConnId hit =
      server.open_connection(cn, [&got](const ps::EnvelopePtr&) { ++got; }, nullptr);
  server.handle_psubscribe(hit, "arena:*");
  const ps::ConnId pub =
      server.open_connection(network.add_node({net::NodeKind::kClient, 1e9}), nullptr, nullptr);

  constexpr int kBatch = 64;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      server.handle_publish(pub, make_bench_envelope("arena:7", ++seq));
    }
    sim.run();
  }
  benchmark::DoNotOptimize(got);
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_FanoutPatternScan)->Arg(8)->Arg(64)->Arg(512);

void BM_MessagePathSubstrate(benchmark::State& state) {
  // Steady-state publish -> deliver through the substrate client stubs: a
  // RemoteConnection publisher sends over the simulated wire, the server
  // fans out to N RemoteConnection subscribers, deliveries arrive at the
  // client side. Exercises the full per-message machinery (envelope
  // construction, command transport callbacks, fan-out, delivery callbacks)
  // without the Dynamoth routing layer on top.
  const auto subs = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  net::Network network(sim, std::make_unique<net::FixedLatencyModel>(millis(1), millis(1)),
                       Rng(7));
  const NodeId server_node = network.add_node({net::NodeKind::kInfrastructure, 1e12});
  ps::PubSubServer::Config config;
  config.conn_drain_bytes_per_sec = 1e12;
  config.infra_drain_bytes_per_sec = 1e12;
  config.conn_output_buffer_limit = std::size_t{1} << 40;
  config.max_egress_backlog = seconds(1e6);
  ps::PubSubServer server(sim, network, server_node, config);

  std::uint64_t got = 0;
  std::vector<std::unique_ptr<ps::RemoteConnection>> conns;
  for (std::size_t i = 0; i < subs; ++i) {
    const NodeId cn = network.add_node({net::NodeKind::kClient, 1e9});
    conns.push_back(std::make_unique<ps::RemoteConnection>(
        sim, network, cn, server, [&got](const ps::EnvelopePtr&) { ++got; }, nullptr));
    conns.back()->subscribe("arena");
  }
  const NodeId pub_node = network.add_node({net::NodeKind::kClient, 1e9});
  ps::RemoteConnection pub(sim, network, pub_node, server, nullptr, nullptr);
  sim.run();  // settle subscriptions

  constexpr int kBatch = 64;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      auto env = ps::make_envelope();
      env->id = MessageId{1, ++seq};
      env->kind = ps::MsgKind::kData;
      env->channel = "arena";
      env->payload_bytes = 128;
      env->publish_time = sim.now();
      env->publisher = 1;
      env->channel_seq = seq;
      pub.publish(std::move(env));
    }
    sim.run();
  }
  benchmark::DoNotOptimize(got);
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_MessagePathSubstrate)->Arg(1)->Arg(16)->Arg(64);

void BM_MessagePathE2E(benchmark::State& state) {
  // The paper's steady-state data plane end to end: a DynamothClient
  // publisher routes through its local plan, the command crosses the wire,
  // the server (with colocated LLA + dispatcher observers) fans out, and N
  // DynamothClient subscribers dedup and deliver to their handlers.
  const auto subs = static_cast<std::size_t>(state.range(0));
  harness::ClusterConfig cluster_config;
  cluster_config.seed = 11;
  cluster_config.initial_servers = 1;
  cluster_config.fixed_latency = true;
  cluster_config.fixed_latency_value = millis(5);
  cluster_config.server_capacity = 1e12;
  cluster_config.server_nic_headroom = 1.0;
  cluster_config.client_egress = 1e12;
  cluster_config.pubsub.conn_drain_bytes_per_sec = 1e12;
  cluster_config.pubsub.infra_drain_bytes_per_sec = 1e12;
  cluster_config.pubsub.conn_output_buffer_limit = std::size_t{1} << 40;
  cluster_config.pubsub.max_egress_backlog = seconds(1e6);
  harness::Cluster cluster(cluster_config);
  sim::Simulator& sim = cluster.sim();

  std::uint64_t got = 0;
  for (std::size_t i = 0; i < subs; ++i) {
    cluster.add_client().subscribe("arena", [&got](const ps::EnvelopePtr&) { ++got; });
  }
  core::DynamothClient& pub = cluster.add_client();
  sim.run_for(seconds(2));  // settle subscriptions + first LLA windows

  constexpr int kBatch = 64;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) pub.publish("arena", 128);
    sim.run_for(millis(200));
  }
  benchmark::DoNotOptimize(got);
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_MessagePathE2E)->Arg(1)->Arg(16)->Arg(64);

void BM_ScaleWeightedFanout(benchmark::State& state) {
  // A cohort subscriber of weight N: one weighted wire delivery stands in
  // for N member deliveries. Per-publish work is O(1) in N, so modeled
  // deliveries/s (items) should grow ~linearly with the arg.
  const auto weight = static_cast<std::uint32_t>(state.range(0));
  harness::ClusterConfig cluster_config;
  cluster_config.seed = 13;
  cluster_config.initial_servers = 1;
  cluster_config.fixed_latency = true;
  cluster_config.fixed_latency_value = millis(5);
  cluster_config.server_capacity = 1e15;
  cluster_config.server_nic_headroom = 1.0;
  cluster_config.client_egress = 1e15;
  cluster_config.pubsub.conn_drain_bytes_per_sec = 1e15;
  cluster_config.pubsub.infra_drain_bytes_per_sec = 1e15;
  cluster_config.pubsub.conn_output_buffer_limit = std::size_t{1} << 40;
  cluster_config.pubsub.max_egress_backlog = seconds(1e6);
  harness::Cluster cluster(cluster_config);

  core::DynamothClient::Config sub_config;
  sub_config.multiplicity = weight;
  std::uint64_t got = 0;
  cluster.add_client(sub_config).subscribe("arena",
                                           [&got](const ps::EnvelopePtr&) { ++got; });
  core::DynamothClient& pub = cluster.add_client();
  cluster.sim().run_for(seconds(2));  // settle subscriptions + LLA windows

  constexpr int kBatch = 64;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) pub.publish("arena", 128);
    cluster.sim().run_for(millis(200));
  }
  benchmark::DoNotOptimize(got);
  state.SetItemsProcessed(state.iterations() * kBatch * weight);
}
BENCHMARK(BM_ScaleWeightedFanout)->Arg(1)->Arg(100)->Arg(10'000);

void BM_ScaleBucketedDelivery(benchmark::State& state) {
  // Same-(destination, arrival) deliveries coalesce into one shared bucket
  // event (net::Network bucket slab) instead of one heap event each; arg =
  // fan-out per arrival tick. Egress is fast enough that transmit time
  // rounds to zero, so every push in a batch lands on the same tick.
  const int fan = static_cast<int>(state.range(0));
  sim::Simulator sim;
  net::Network network(sim, std::make_unique<net::FixedLatencyModel>(millis(5), millis(1)),
                       Rng(3));
  const NodeId src = network.add_node({net::NodeKind::kInfrastructure, 1e15});
  const NodeId dst = network.add_node({net::NodeKind::kClient, 1e15});
  std::uint64_t got = 0;
  for (auto _ : state) {
    {
      net::Network::FanoutBatch batch(network, src);
      for (int i = 0; i < fan; ++i) {
        batch.send(dst, 128, [&got] { ++got; });
      }
    }
    sim.run();
  }
  benchmark::DoNotOptimize(got);
  state.SetItemsProcessed(state.iterations() * fan);
}
BENCHMARK(BM_ScaleBucketedDelivery)->Arg(16)->Arg(256);

void BM_ScaleCohortGame(benchmark::State& state) {
  // End-to-end cohort-mode game run (tile cohorts + migration + balancer)
  // at a fixed population: 10 simulated seconds per iteration. Wall cost
  // tracks aggregate channel traffic, not the modeled member count — items
  // are modeled user-seconds.
  const auto users = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    mammoth::exp::GameExperimentConfig config = mammoth::exp::default_game_experiment();
    config.seed = 77;
    config.balancer = mammoth::exp::BalancerKind::kDynamoth;
    config.schedule = {{seconds(0), 1200}};
    config.duration = seconds(10);
    config.sample_interval = seconds(5);
    mammoth::exp::scale_population(config, static_cast<double>(users) / 1200.0);
    const mammoth::exp::GameExperimentResult result = run_game_experiment(config);
    benchmark::DoNotOptimize(result.executed_events);
  }
  state.SetItemsProcessed(state.iterations() * users * 10);
}
BENCHMARK(BM_ScaleCohortGame)->Arg(1'000)->Arg(10'000)->Unit(benchmark::kMillisecond);

/// Minimal shard for engine-overhead benches: a periodic local event every
/// `tick` keeps the min-next reduction from fast-forwarding whole epochs
/// away, so the measured cost is the barrier + drain machinery itself.
class TickingShard : public sim::Shard {
 public:
  explicit TickingShard(SimTime tick) : task_(sim_, tick, [this] { ++ticks_; }) {
    task_.start();
  }
  sim::Simulator& simulator() override { return sim_; }
  void on_boundary(std::size_t /*src*/, const sim::BoundaryEvent& ev) override {
    sim_.schedule_at(ev.at, [this] { ++received_; });
  }
  [[nodiscard]] std::uint64_t received() const { return received_; }

 private:
  sim::Simulator sim_;
  std::uint64_t ticks_ = 0;
  std::uint64_t received_ = 0;
  sim::PeriodicTask task_;
};

void BM_ParallelEpochOverhead(benchmark::State& state) {
  // Pure synchronization cost: K shards, each with one local event per
  // lookahead window, so every epoch does real (tiny) work and the wall
  // cost is dominated by drain -> barrier -> reduce -> run -> barrier.
  // Items are epochs completed.
  const auto shards = static_cast<std::size_t>(state.range(0));
  std::uint64_t epochs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    {
      sim::ShardedEngineConfig cfg;
      cfg.shards = shards;
      cfg.lookahead = millis(10);
      sim::ShardedEngine engine(cfg);
      engine.build(
          [](std::size_t) { return std::make_unique<TickingShard>(millis(10)); });
      state.ResumeTiming();
      engine.run_until(seconds(20));
      epochs += engine.stats().epochs;
      benchmark::DoNotOptimize(engine.stats().epochs);
      state.PauseTiming();
      // Engine teardown (thread joins) happens here, outside the timed region.
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(epochs));
}
BENCHMARK(BM_ParallelEpochOverhead)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ParallelBoundaryRelay(benchmark::State& state) {
  // Cross-shard messaging throughput: each shard posts one boundary event
  // per tick to its ring neighbour. Items are boundary events merged.
  const std::size_t shards = 2;
  std::uint64_t posted = 0;
  struct RelayShard : sim::Shard {
    sim::Simulator sim;
    sim::ShardedEngine* engine = nullptr;
    std::size_t id = 0;
    sim::PeriodicTask task{sim, millis(5), [this] {
                             engine->post(id, (id + 1) % 2,
                                          {sim.now() + millis(5), 1, 0, 0, 0, 0.0});
                           }};
    sim::Simulator& simulator() override { return sim; }
    void on_boundary(std::size_t, const sim::BoundaryEvent& ev) override {
      sim.schedule_at(ev.at, [] {});
    }
  };
  for (auto _ : state) {
    state.PauseTiming();
    {
      sim::ShardedEngineConfig cfg;
      cfg.shards = shards;
      cfg.lookahead = millis(5);
      sim::ShardedEngine engine(cfg);
      engine.build([&engine](std::size_t i) -> std::unique_ptr<sim::Shard> {
        auto shard = std::make_unique<RelayShard>();
        shard->engine = &engine;
        shard->id = i;
        shard->task.start();
        return shard;
      });
      state.ResumeTiming();
      engine.run_until(seconds(20));
      posted += engine.stats().boundary_events;
      benchmark::DoNotOptimize(engine.stats().boundary_events);
      state.PauseTiming();
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(posted));
}
BENCHMARK(BM_ParallelBoundaryRelay)->Unit(benchmark::kMillisecond);

void BM_ParallelShardedGame(benchmark::State& state) {
  // End-to-end block-parallel cohort game: 10 sim-seconds at 10^4 modeled
  // users, K = range(0) regions. On a multi-core runner wall time drops
  // with K; items are modeled user-seconds (same normalization as
  // BM_ScaleCohortGame so the two series are comparable).
  const auto shards = static_cast<std::size_t>(state.range(0));
  const std::size_t users = 10'000;
  for (auto _ : state) {
    mammoth::exp::GameExperimentConfig config = mammoth::exp::default_game_experiment();
    config.seed = 77;
    config.balancer = mammoth::exp::BalancerKind::kDynamoth;
    config.schedule = {{seconds(0), 1200}};
    config.duration = seconds(10);
    config.sample_interval = seconds(5);
    mammoth::exp::scale_population(config, static_cast<double>(users) / 1200.0);
    mammoth::exp::ShardOptions options;
    options.shards = shards;
    const mammoth::exp::ShardedGameResult result =
        mammoth::exp::run_sharded_game_experiment(config, options);
    benchmark::DoNotOptimize(result.merged.executed_events);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(users) * 10);
}
BENCHMARK(BM_ParallelShardedGame)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  // The common pattern: events that schedule follow-up events.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    std::int64_t count = 0;
    std::function<void()> chain = [&] {
      if (++count < 10'000) sim.schedule_after(10, chain);
    };
    state.ResumeTiming();
    sim.schedule_after(0, chain);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorSelfScheduling);

}  // namespace

BENCHMARK_MAIN();
