// Google-benchmark microbenchmarks for the hot data-plane and control-plane
// primitives: consistent-hash lookups, plan resolution/copying, message
// dedup, histogram recording, glob matching and raw simulator throughput.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/lru_set.h"
#include "common/rng.h"
#include "core/consistent_hash.h"
#include "core/plan.h"
#include "metrics/histogram.h"
#include "pubsub/server.h"
#include "sim/simulator.h"

namespace {

using namespace dynamoth;

std::vector<Channel> make_channels(int n) {
  std::vector<Channel> channels;
  channels.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) channels.push_back("tile:" + std::to_string(i % 40) + ":" +
                                                 std::to_string(i / 40));
  return channels;
}

void BM_RingLookup(benchmark::State& state) {
  core::ConsistentHashRing ring(64);
  for (ServerId s = 0; s < static_cast<ServerId>(state.range(0)); ++s) ring.add_server(s);
  const auto channels = make_channels(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.lookup(channels[i++ & 1023]));
  }
}
BENCHMARK(BM_RingLookup)->Arg(1)->Arg(4)->Arg(8);

void BM_RingAddRemoveServer(benchmark::State& state) {
  core::ConsistentHashRing ring(64);
  for (ServerId s = 0; s < 8; ++s) ring.add_server(s);
  for (auto _ : state) {
    ring.add_server(99);
    ring.remove_server(99);
  }
}
BENCHMARK(BM_RingAddRemoveServer);

void BM_PlanResolveExplicit(benchmark::State& state) {
  core::ConsistentHashRing ring(64);
  ring.add_server(0);
  ring.add_server(1);
  core::Plan plan;
  const auto channels = make_channels(static_cast<int>(state.range(0)));
  for (const Channel& c : channels) {
    core::PlanEntry entry;
    entry.servers = {0};
    entry.version = 1;
    plan.set_entry(c, entry);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.resolve(channels[i++ % channels.size()], ring));
  }
}
BENCHMARK(BM_PlanResolveExplicit)->Arg(64)->Arg(1024);

void BM_PlanResolveFallback(benchmark::State& state) {
  core::ConsistentHashRing ring(64);
  for (ServerId s = 0; s < 4; ++s) ring.add_server(s);
  core::Plan plan;  // empty: everything falls back to the ring
  const auto channels = make_channels(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.resolve(channels[i++ & 1023], ring));
  }
}
BENCHMARK(BM_PlanResolveFallback);

void BM_PlanCopy(benchmark::State& state) {
  core::Plan plan;
  for (const Channel& c : make_channels(static_cast<int>(state.range(0)))) {
    core::PlanEntry entry;
    entry.servers = {0, 1, 2};
    entry.version = 3;
    plan.set_entry(c, entry);
  }
  for (auto _ : state) {
    core::Plan copy = plan;  // what every rebalancing round does
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_PlanCopy)->Arg(64)->Arg(512)->Arg(4096);

void BM_DedupLruInsert(benchmark::State& state) {
  LruSet<MessageId> dedup(8192);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedup.insert(MessageId{7, seq++}));
  }
}
BENCHMARK(BM_DedupLruInsert);

void BM_HistogramRecord(benchmark::State& state) {
  metrics::Histogram histogram;
  Rng rng(1);
  for (auto _ : state) {
    histogram.record(static_cast<std::int64_t>(rng.uniform(100, 400000)));
  }
  benchmark::DoNotOptimize(histogram.percentile(99));
}
BENCHMARK(BM_HistogramRecord);

void BM_GlobMatch(benchmark::State& state) {
  const std::string pattern = "tile:*:7";
  const std::string channel = "tile:1234:7";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ps::PubSubServer::glob_match(pattern, channel));
  }
}
BENCHMARK(BM_GlobMatch);

void BM_SimulatorThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    int fired = 0;
    state.ResumeTiming();
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule_at(i, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorThroughput);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  // The common pattern: events that schedule follow-up events.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    std::int64_t count = 0;
    std::function<void()> chain = [&] {
      if (++count < 10'000) sim.schedule_after(10, chain);
    };
    state.ResumeTiming();
    sim.schedule_after(0, chain);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorSelfScheduling);

}  // namespace

BENCHMARK_MAIN();
