// Flash-crowd figure: wildcard (PSUBSCRIBE) listeners under a popularity
// spike, with and without a server crash mid-spike.
//
// Eight "fc:<i>" channels publish at 10 Hz; wildcard clients psubscribe
// "fc:*" while plain clients subscribe to every channel explicitly. At
// t=15s one channel's publish rate ramps 50x in 3 seconds and a crowd of
// explicit joiners piles on, tripping Algorithm 1 replication and the
// system-level rebalancer; the crash arm kills a server at the spike's
// peak on top. A raw substrate PSUBSCRIBE pinned to one server (the
// pre-fix behaviour) runs alongside and counts its silent misses.
//
// Outputs:
//   fig_flashcrowd.csv             one summary row per scenario
//   fig_flashcrowd_<scenario>.csv  per-window metrics (rates, spike factor)
//   fig_flashcrowd_audit.txt       rebalance audit timelines
//
// Exit status is non-zero when a wildcard listener missed a publication
// every explicit subscriber received (the cross-server miss this PR fixes),
// or when pattern expansion never happened at all.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/flashcrowd.h"

int main(int argc, char** argv) {
  using namespace dynamoth;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  struct Scenario {
    std::string name;
    harness::FlashCrowdSchedule spikes;
    fault::FaultSchedule faults;
  };
  std::vector<Scenario> scenarios;
  {
    Scenario spike;
    spike.name = "spike";
    // 50x: past the scaled Algorithm 1 thresholds (replication churn is the
    // point) but under the NIC line rate — a saturating spike would measure
    // best-effort drop luck, not pattern routing.
    spike.spikes.spike(seconds(15), 0, 50.0, seconds(3), seconds(10), seconds(8),
                       /*join=*/6);
    scenarios.push_back(spike);
  }
  if (!smoke) {
    // The crash lands at the spike's peak: the emergency re-home and the
    // replication entries churn while pattern fan-out is at its highest.
    Scenario crash;
    crash.name = "spike_crash";
    crash.spikes.spike(seconds(15), 0, 50.0, seconds(3), seconds(10), seconds(8),
                       /*join=*/6);
    crash.faults.crash(seconds(22));
    scenarios.push_back(crash);
  }

  std::ofstream summary("fig_flashcrowd.csv");
  summary << "scenario,published,pattern_delivered,explicit_delivered,crowd_delivered,"
             "pattern_missing,pattern_dups,explicit_dups,raw_received,raw_missed,"
             "patterns_expanded,replications,plans,emergency_rebalances,peak_servers,"
             "pass\n";
  std::ofstream audit("fig_flashcrowd_audit.txt");

  bool all_pass = true;
  for (const Scenario& scenario : scenarios) {
    harness::FlashCrowdConfig config;
    config.seed = 11;
    config.spikes = scenario.spikes;
    config.faults = scenario.faults;
    // Fixed WAN latency makes the wildcard and explicit clients timing-
    // identical, so the equivalence gate measures pattern routing, not
    // per-client King-latency jitter at reconfiguration edges (under churn,
    // clients with different RTTs re-place subscriptions at different
    // instants and their received sets diverge by a handful of messages in
    // both directions — explicit clients included).
    config.cluster.fixed_latency = true;
    if (smoke) {
      config.duration = seconds(45);
      config.drain = seconds(15);
    }
    const harness::FlashCrowdResult r = harness::run_flashcrowd(config);

    r.metrics.save_windows_csv("fig_flashcrowd_" + scenario.name + ".csv");

    const bool pass = r.pattern_missing == 0 && r.patterns_expanded > 0;
    all_pass = all_pass && pass;

    summary << scenario.name << ',' << r.published << ',' << r.pattern_delivered_unique
            << ',' << r.explicit_delivered_unique << ',' << r.crowd_delivered_unique
            << ',' << r.pattern_missing << ',' << r.pattern_duplicates << ','
            << r.explicit_duplicates << ',' << r.raw_received << ',' << r.raw_missed
            << ',' << r.patterns_expanded << ',' << r.lb_stats.replications_started
            << ',' << r.lb_stats.plans_generated << ','
            << r.lb_stats.emergency_rebalances << ',' << r.peak_servers << ','
            << (pass ? 1 : 0) << '\n';

    std::printf("== %s ==\n", scenario.name.c_str());
    std::printf("   published %llu  pattern %llu  explicit %llu  crowd %llu\n",
                static_cast<unsigned long long>(r.published),
                static_cast<unsigned long long>(r.pattern_delivered_unique),
                static_cast<unsigned long long>(r.explicit_delivered_unique),
                static_cast<unsigned long long>(r.crowd_delivered_unique));
    std::printf("   pattern_missing %llu  dups %llu/%llu  expanded %llu  %s\n",
                static_cast<unsigned long long>(r.pattern_missing),
                static_cast<unsigned long long>(r.pattern_duplicates),
                static_cast<unsigned long long>(r.explicit_duplicates),
                static_cast<unsigned long long>(r.patterns_expanded),
                pass ? "PASS" : "FAIL");
    std::printf("   raw arm: received %llu missed %llu (pre-fix single-server "
                "PSUBSCRIBE)\n",
                static_cast<unsigned long long>(r.raw_received),
                static_cast<unsigned long long>(r.raw_missed));
    std::printf("   replications %llu  plans %llu  emergency %llu  peak servers %llu\n\n",
                static_cast<unsigned long long>(r.lb_stats.replications_started),
                static_cast<unsigned long long>(r.lb_stats.plans_generated),
                static_cast<unsigned long long>(r.lb_stats.emergency_rebalances),
                static_cast<unsigned long long>(r.peak_servers));

    audit << "==== " << scenario.name << " ====\n" << r.audit_timeline << '\n';
  }

  std::printf("%s\n", all_pass ? "ALL PASS" : "SOME RUNS FAILED");
  return all_pass ? 0 : 1;
}
