// Failover figure: crash and partition scenarios, with and without the
// replay-based reliability layer.
//
// A fixed workload (6 channels, one 10 Hz publisher each, 3 subscribers on
// every channel) runs while the fault injector kills or isolates a server.
// The control plane detects the silence through the heartbeat failure
// detector and pushes an emergency plan; the figure charts the per-window
// delivery rate around the fault and reports detection latency, recovery
// latency, and permanent message loss for each arm.
//
// Outputs:
//   fig_failover.csv                    one summary row per run
//   fig_failover_<scenario>_<arm>.csv   per-window metrics (delivered, ...)
//   fig_failover_audit.txt              rebalance audit + fault timelines
//
// Exit status is non-zero when a run misses its recovery budget (detector
// timeout + two balancer ticks + propagation slack) or a reliability-on run
// loses a message permanently.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/failover.h"

int main(int argc, char** argv) {
  using namespace dynamoth;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  struct Scenario {
    std::string name;
    fault::FaultSchedule schedule;
  };
  std::vector<Scenario> scenarios;
  {
    // One server dies for good 20s in; only the emergency rebalance can
    // bring its channels back.
    fault::FaultSchedule crash;
    crash.crash(seconds(20));
    scenarios.push_back({"crash", crash});
  }
  if (!smoke) {
    // One server is cut off for 12s, then healed: long enough for the
    // detector to fire and the fleet to route around it, and the healed
    // server must rejoin cleanly.
    fault::FaultSchedule partition;
    partition.partition(seconds(20), 1, seconds(12));
    scenarios.push_back({"partition", partition});
  }

  const SimTime detector_timeout = seconds(4);
  const SimTime tick = seconds(1);
  const SimTime budget = detector_timeout + 2 * tick + seconds(5);

  std::ofstream summary("fig_failover.csv");
  summary << "scenario,reliability,published,expected,delivered,lost,duplicates,"
             "detection_ms,recovery_ms,budget_ms,emergency_rebalances,republishes,"
             "gaps_detected,recovered,gave_up,pass\n";
  std::ofstream audit("fig_failover_audit.txt");

  bool all_pass = true;
  for (const Scenario& scenario : scenarios) {
    for (const bool reliability : {false, true}) {
      harness::FailoverConfig config;
      config.seed = 7;
      config.schedule = scenario.schedule;
      config.reliability = reliability;
      config.detector_timeout = detector_timeout;
      if (smoke) {
        config.duration = seconds(35);
        config.drain = seconds(15);
      }
      const harness::FailoverResult r = harness::run_failover(config);

      const std::string arm = reliability ? "reliable" : "besteffort";
      const std::string tag = scenario.name + "_" + arm;
      r.metrics.save_windows_csv("fig_failover_" + tag + ".csv");

      const double detection_ms =
          r.detection_latency >= 0 ? to_seconds(r.detection_latency) * 1e3 : -1;
      const double recovery_ms =
          r.recovery_latency >= 0 ? to_seconds(r.recovery_latency) * 1e3 : -1;
      bool pass = r.recovery_latency >= 0 && r.recovery_latency <= budget;
      if (reliability && r.lost != 0) pass = false;
      all_pass = all_pass && pass;

      summary << scenario.name << ',' << (reliability ? 1 : 0) << ',' << r.published
              << ',' << r.expected << ',' << r.delivered_unique << ',' << r.lost << ','
              << r.duplicates << ',' << detection_ms << ',' << recovery_ms << ','
              << to_seconds(budget) * 1e3 << ',' << r.lb_stats.emergency_rebalances
              << ',' << r.client_totals.republishes << ','
              << r.reliability_totals.gaps_detected << ','
              << r.reliability_totals.recovered << ',' << r.reliability_totals.gave_up
              << ',' << (pass ? 1 : 0) << '\n';

      std::printf("== %s ==\n", tag.c_str());
      std::printf("   published %llu  delivered %llu/%llu  lost %llu  dups %llu\n",
                  static_cast<unsigned long long>(r.published),
                  static_cast<unsigned long long>(r.delivered_unique),
                  static_cast<unsigned long long>(r.expected),
                  static_cast<unsigned long long>(r.lost),
                  static_cast<unsigned long long>(r.duplicates));
      std::printf("   detection %.0f ms  recovery %.0f ms (budget %.0f ms)  %s\n",
                  detection_ms, recovery_ms, to_seconds(budget) * 1e3,
                  pass ? "PASS" : "FAIL");
      std::printf("   emergency rebalances %llu  republishes %llu  replay "
                  "gaps %llu recovered %llu gave_up %llu\n\n",
                  static_cast<unsigned long long>(r.lb_stats.emergency_rebalances),
                  static_cast<unsigned long long>(r.client_totals.republishes),
                  static_cast<unsigned long long>(r.reliability_totals.gaps_detected),
                  static_cast<unsigned long long>(r.reliability_totals.recovered),
                  static_cast<unsigned long long>(r.reliability_totals.gave_up));

      audit << "==== " << tag << " ====\n-- faults --\n";
      for (const auto& f : r.faults) {
        audit << "  t=" << to_seconds(f.time) << "s " << fault::to_string(f.kind)
              << (f.reversal ? " (reversal)" : "") << ": " << f.detail << '\n';
      }
      audit << "-- liveness --\n";
      for (const auto& ev : r.liveness) {
        audit << "  t=" << to_seconds(ev.time) << "s server " << ev.server << ' '
              << (ev.kind == core::BalancerBase::LivenessEvent::Kind::kSuspected
                      ? "SUSPECTED"
                      : "REJOINED")
              << " (silence " << to_seconds(ev.silence) << "s)\n";
      }
      audit << "-- rebalance audit --\n" << r.audit_timeline << '\n';
    }
  }

  std::printf("%s\n", all_pass ? "ALL PASS" : "SOME RUNS FAILED");
  return all_pass ? 0 : 1;
}
