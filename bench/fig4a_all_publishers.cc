// Figure 4a — Experiment 1: "All Publishers" channel replication.
//
// Paper setup (V-C1): up to 800 subscribers on one channel c, one publisher
// sending 10 publications/second. Non-replicated (one pub/sub server owns c)
// vs replicated over 3 servers under the all-publishers scheme (publisher
// sends to all 3, each subscriber subscribes to exactly one).
//
// Expected shape: non-replicated response time grows with the subscriber
// count and collapses past ~500 subscribers (single-threaded fan-out CPU
// saturates); 3-server replication stays flat and low.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "harness/cluster.h"
#include "harness/probes.h"
#include "metrics/series.h"

namespace {

using namespace dynamoth;

struct RunResult {
  double mean_ms = 0;
  double p99_ms = 0;
  double delivered_pct = 0;
};

RunResult run_point(int subscribers, bool replicated, std::uint64_t seed) {
  harness::ClusterConfig config;
  config.seed = seed;
  config.initial_servers = 3;
  const Channel channel = "region:updates";

  harness::Cluster cluster(config);
  const auto servers = cluster.server_ids();

  core::Plan plan;
  core::PlanEntry entry;
  entry.version = 1;
  if (replicated) {
    entry.mode = core::ReplicationMode::kAllPublishers;
    entry.servers = servers;
  } else {
    entry.mode = core::ReplicationMode::kNone;
    entry.servers = {servers[0]};
  }
  plan.set_entry(channel, entry);
  cluster.install_plan(plan);

  harness::ResponseProbe probe;
  std::uint64_t delivered = 0;
  SimTime measure_start = -1;
  for (int i = 0; i < subscribers; ++i) {
    auto& sub = cluster.add_client();
    sub.subscribe(channel, [&](const ps::EnvelopePtr& env) {
      probe.record(cluster.sim().now() - env->publish_time);
      if (measure_start >= 0 && env->publish_time >= measure_start) ++delivered;
    });
  }
  auto& publisher = cluster.add_client();
  // Experiment 1 measures the steady-state replication configuration: the
  // paper's clients already publish/subscribe per the chosen scheme, so we
  // pre-seed the local plans instead of exercising the (separately tested)
  // lazy correction path.
  publisher.absorb_entry(channel, entry);
  cluster.sim().run_for(seconds(3));  // placement settles

  std::uint64_t published = 0;
  bool measuring = false;
  sim::PeriodicTask traffic(cluster.sim(), millis(100), [&] {
    publisher.publish(channel, 128);
    if (measuring) ++published;
  });
  traffic.start();
  cluster.sim().run_for(seconds(5));  // warmup
  measuring = true;
  measure_start = cluster.sim().now();
  cluster.sim().run_for(seconds(20));
  traffic.stop();
  cluster.sim().run_for(seconds(10));  // drain queues

  RunResult result;
  result.mean_ms = probe.overall_mean_ms();
  result.p99_ms = probe.percentile_ms(99);
  const double expected =
      static_cast<double>(published) * static_cast<double>(subscribers);
  result.delivered_pct =
      expected > 0 ? 100.0 * static_cast<double>(delivered) / expected : 0;
  return result;
}

}  // namespace

int main() {
  std::printf("== Figure 4a: all-publishers replication (1 publisher @ 10 msg/s) ==\n");
  std::printf("   response time vs number of subscribers; non-replicated vs 3 replicas\n\n");

  dynamoth::metrics::Series series(
      {"subscribers", "rt_ms_nonreplicated", "rt_p99_nonreplicated", "delivered_pct_nonrepl",
       "rt_ms_replicated_x3", "rt_p99_replicated_x3", "delivered_pct_repl"});

  for (int subs = 100; subs <= 800; subs += 100) {
    const RunResult plain = run_point(subs, /*replicated=*/false, 1000 + subs);
    const RunResult repl = run_point(subs, /*replicated=*/true, 2000 + subs);
    series.add_row({static_cast<double>(subs), plain.mean_ms, plain.p99_ms,
                    plain.delivered_pct, repl.mean_ms, repl.p99_ms, repl.delivered_pct});
  }
  series.print_table(std::cout);
  series.save_csv("fig4a_all_publishers.csv");
  std::printf("\n(series saved to fig4a_all_publishers.csv)\n");
  return 0;
}
