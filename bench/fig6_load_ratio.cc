// Figure 6 — Experiment 2 (Dynamoth run): per-server load ratios.
//
// Paper setup (V-D): for the Dynamoth scalability run, plot the average load
// ratio across active servers, the load ratio of the busiest server, the
// number of Redis servers, and the rebalancing points.
//
// Expected shape: the balancer holds the average LR below 1 until the whole
// system saturates, and the busiest server's LR below ~1 (Redis fails at
// ~1.15) for most of the run; server count steps up at high-load rebalances.
#include <cstdio>
#include <iostream>

#include "mammoth/experiments.h"

int main() {
  using namespace dynamoth;
  namespace exp = mammoth::exp;

  std::printf("== Figure 6: Dynamoth load balancer — pub/sub server load ratios ==\n");
  std::printf("   same run as Figure 5 (Dynamoth side)\n\n");

  exp::GameExperimentConfig config = exp::default_game_experiment();
  config.seed = 77;
  config.balancer = exp::BalancerKind::kDynamoth;
  config.schedule = {{seconds(0), 120}, {seconds(60), 120}, {seconds(420), 1200}};
  config.duration = seconds(480);
  config.sample_interval = seconds(10);

  const exp::GameExperimentResult result = run_game_experiment(config);

  metrics::Series series({"t_s", "avg_load_ratio", "max_load_ratio", "servers", "rebalances"});
  const auto& s = result.series;
  const std::size_t t_col = s.column_index("t_s");
  const std::size_t avg_col = s.column_index("avg_lr");
  const std::size_t max_col = s.column_index("max_lr");
  const std::size_t srv_col = s.column_index("servers");
  const std::size_t reb_col = s.column_index("rebalances");
  for (std::size_t i = 0; i < s.rows(); ++i) {
    series.add_row({s.value(i, t_col), s.value(i, avg_col), s.value(i, max_col),
                    s.value(i, srv_col), s.value(i, reb_col)});
  }
  series.print_table(std::cout);
  series.save_csv("fig6_load_ratio.csv");

  std::printf("\nrebalancing events:\n");
  for (const auto& event : result.events) {
    std::printf("  t=%7.1fs  %-13s plan %llu, %zu servers\n", to_seconds(event.time),
                core::to_string(event.kind), static_cast<unsigned long long>(event.plan_id),
                event.active_servers);
  }
  std::printf("\npeak avg LR: %.3f | peak max LR: %.3f (Redis fails near 1.15)\n",
              s.column_max("avg_lr"), s.column_max("max_lr"));
  std::printf("(series saved to fig6_load_ratio.csv)\n");
  return 0;
}
