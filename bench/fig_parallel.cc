// fig_parallel — block-parallel engine scaling sweep (DESIGN.md section 15).
//
// Replays one fixed cohort-mode workload (a fig_scale-style ramp) under the
// sharded simulation engine at increasing shard counts and reports the
// wall-clock speedup over K = 1, the epoch count, and the cross-shard
// boundary traffic. The K = 1 row runs the identical workload through the
// same driver (which short-circuits to the classic single-threaded engine),
// so the speedup column is apples to apples.
//
// Determinism recheck: the smallest multi-shard point is run twice and the
// (executed_events, rng_draws, series) fingerprints must match exactly.
//
// Speedup assertion: when DYNAMOTH_REQUIRE_SPEEDUP is set in the
// environment AND the machine exposes at least 4 hardware threads, the
// 4-shard point must beat K = 1 by the given factor (e.g.
// DYNAMOTH_REQUIRE_SPEEDUP=2.0). Unset, the sweep is informational — a
// 1-core container can still validate correctness and determinism, just
// not parallel speedup.
//
// Usage: fig_parallel [--smoke] [--users N] [--shards K[,K...]]
//   --smoke    small population, short ramp, K in {1,2} (CI quick job)
//   --users N  modeled population (default 100000)
//   --shards   comma list of shard counts (default 1,2,4)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "mammoth/sharded_experiment.h"
#include "metrics/series.h"

namespace {

using namespace dynamoth;
namespace exp = mammoth::exp;

std::vector<std::size_t> parse_shard_list(const char* arg) {
  std::vector<std::size_t> out;
  std::string s(arg);
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok = s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

exp::GameExperimentConfig workload(std::size_t users, SimTime duration) {
  exp::GameExperimentConfig config = exp::default_game_experiment();
  config.seed = 77;
  config.balancer = exp::BalancerKind::kDynamoth;
  const SimTime ramp_start = duration / 8;
  config.schedule = {{seconds(0), 120}, {ramp_start, 120}, {duration - duration / 8, 1200}};
  config.duration = duration;
  config.sample_interval = seconds(10);
  exp::scale_population(config, static_cast<double>(users) / 1200.0);
  return config;
}

struct Point {
  std::size_t shards;
  double wall_s;
  exp::ShardedGameResult result;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t users = 100'000;
  std::vector<std::size_t> shard_counts = {1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      users = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_counts = parse_shard_list(argv[++i]);
    }
  }
  if (smoke) {
    users = std::min<std::size_t>(users, 10'000);
    shard_counts = {1, 2};
  }
  const SimTime duration = smoke ? seconds(60) : seconds(120);

  std::printf("== fig_parallel: block-parallel engine scaling ==\n");
  std::printf("   %zu modeled users, %0.f sim-s ramp, %u hardware threads\n\n", users,
              to_seconds(duration), std::thread::hardware_concurrency());

  metrics::Series series{std::vector<std::string>{
      "shards", "wall_s", "speedup", "epochs", "boundary_events", "executed_events",
      "rng_draws", "total_updates", "peak_servers"}};

  std::vector<Point> points;
  for (const std::size_t k : shard_counts) {
    if (k == 0) continue;
    exp::ShardOptions options;
    options.shards = k;
    const auto wall_start = std::chrono::steady_clock::now();
    exp::ShardedGameResult result = exp::run_sharded_game_experiment(workload(users, duration),
                                                                     options);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    points.push_back({k, wall_s, std::move(result)});
  }

  const double base_wall = points.empty() ? 0.0 : points.front().wall_s;
  double speedup_at_4 = 0.0;
  for (const Point& p : points) {
    const double speedup = p.wall_s > 0 ? base_wall / p.wall_s : 0.0;
    if (p.shards == 4) speedup_at_4 = speedup;
    series.add_row({static_cast<double>(p.shards), p.wall_s, speedup,
                    static_cast<double>(p.result.engine.epochs),
                    static_cast<double>(p.result.engine.boundary_events),
                    static_cast<double>(p.result.merged.executed_events),
                    static_cast<double>(p.result.merged.rng_draws),
                    static_cast<double>(p.result.merged.total_updates),
                    p.result.merged.peak_servers});
    std::printf(
        "shards %2zu | wall %7.2f s | speedup %5.2fx | epochs %8llu | boundary %8llu | "
        "events %llu\n",
        p.shards, p.wall_s, speedup,
        static_cast<unsigned long long>(p.result.engine.epochs),
        static_cast<unsigned long long>(p.result.engine.boundary_events),
        static_cast<unsigned long long>(p.result.merged.executed_events));
  }

  // Determinism recheck: rerun the smallest K > 1 point and compare
  // fingerprints — thread scheduling must not leak into results.
  const Point* multi = nullptr;
  for (const Point& p : points) {
    if (p.shards > 1 && (multi == nullptr || p.shards < multi->shards)) multi = &p;
  }
  if (multi != nullptr) {
    exp::ShardOptions options;
    options.shards = multi->shards;
    const exp::ShardedGameResult again =
        exp::run_sharded_game_experiment(workload(users, duration), options);
    const bool identical =
        again.merged.executed_events == multi->result.merged.executed_events &&
        again.merged.rng_draws == multi->result.merged.rng_draws &&
        again.merged.total_updates == multi->result.merged.total_updates &&
        again.engine.boundary_events == multi->result.engine.boundary_events;
    std::printf("\ndeterminism recheck at K=%zu: %s\n", multi->shards,
                identical ? "identical" : "MISMATCH");
    if (!identical) return 1;
  }

  series.save_csv("fig_parallel.csv");
  std::printf("(series saved to fig_parallel.csv)\n");

  const char* require = std::getenv("DYNAMOTH_REQUIRE_SPEEDUP");
  if (require != nullptr && std::thread::hardware_concurrency() >= 4 && speedup_at_4 > 0) {
    const double threshold = std::strtod(require, nullptr);
    if (speedup_at_4 < threshold) {
      std::fprintf(stderr, "FAIL: 4-shard speedup %.2fx below required %.2fx\n", speedup_at_4,
                   threshold);
      return 1;
    }
    std::printf("4-shard speedup %.2fx meets required %.2fx\n", speedup_at_4, threshold);
  }
  return 0;
}
