// Figure 4b — Experiment 1: "All Subscribers" channel replication.
//
// Paper setup (V-C2): up to 800 publishers at 10 publications/second each on
// one channel c, a single subscriber. Non-replicated vs replicated over 3
// servers under the all-subscribers scheme (each publisher picks a random
// replica, the subscriber subscribes to all 3).
//
// Expected shape: non-replicated supports ~200 publishers before the
// subscriber's output buffer overflows and delivery fails (Redis drops the
// client); 3-server replication holds to ~600 because each connection
// carries a third of the stream.
#include <cstdio>
#include <iostream>
#include <vector>

#include "harness/cluster.h"
#include "harness/probes.h"
#include "metrics/series.h"

namespace {

using namespace dynamoth;

struct RunResult {
  double mean_ms = 0;
  double delivered_pct = 0;
  double drops = 0;  // subscriber connection drops (buffer overflows)
};

RunResult run_point(int publishers, bool replicated, std::uint64_t seed) {
  harness::ClusterConfig config;
  config.seed = seed;
  config.initial_servers = 3;
  const Channel channel = "ingest";

  harness::Cluster cluster(config);
  const auto servers = cluster.server_ids();

  core::Plan plan;
  core::PlanEntry entry;
  entry.version = 1;
  if (replicated) {
    entry.mode = core::ReplicationMode::kAllSubscribers;
    entry.servers = servers;
  } else {
    entry.mode = core::ReplicationMode::kNone;
    entry.servers = {servers[0]};
  }
  plan.set_entry(channel, entry);
  cluster.install_plan(plan);

  harness::ResponseProbe probe;
  std::uint64_t delivered = 0;
  SimTime measure_start = -1;
  auto& subscriber = cluster.add_client();
  subscriber.subscribe(channel, [&](const ps::EnvelopePtr& env) {
    probe.record(cluster.sim().now() - env->publish_time);
    if (measure_start >= 0 && env->publish_time >= measure_start) ++delivered;
  });

  std::vector<core::DynamothClient*> pubs;
  // Pre-seed publisher plans: the paper's Experiment 1 runs the replicated
  // configuration steady-state ("all publishers were publishing randomly to
  // one of the 3 servers"), not the first-contact thundering herd.
  for (int i = 0; i < publishers; ++i) {
    auto& p = cluster.add_client();
    p.absorb_entry(channel, entry);
    pubs.push_back(&p);
  }
  cluster.sim().run_for(seconds(3));

  std::uint64_t published = 0;
  bool measuring = false;
  // Each publisher sends 10 msg/s; stagger them across the 100 ms period.
  std::vector<std::unique_ptr<sim::PeriodicTask>> traffic;
  for (int i = 0; i < publishers; ++i) {
    auto* p = pubs[static_cast<std::size_t>(i)];
    traffic.push_back(std::make_unique<sim::PeriodicTask>(cluster.sim(), millis(100), [&, p] {
      p->publish(channel, 128);
      if (measuring) ++published;
    }));
    traffic.back()->start_after(millis(100) * i / publishers);
  }

  cluster.sim().run_for(seconds(5));  // warmup
  measuring = true;
  measure_start = cluster.sim().now();
  cluster.sim().run_for(seconds(20));
  for (auto& t : traffic) t->stop();
  cluster.sim().run_for(seconds(10));

  RunResult result;
  result.mean_ms = probe.overall_mean_ms();
  result.delivered_pct =
      published > 0
          ? 100.0 * static_cast<double>(delivered) / static_cast<double>(published)
          : 0;
  result.drops = static_cast<double>(subscriber.stats().connection_drops);
  return result;
}

}  // namespace

int main() {
  std::printf("== Figure 4b: all-subscribers replication (N publishers @ 10 msg/s, 1 subscriber) ==\n");
  std::printf("   delivery success vs number of publishers; non-replicated vs 3 replicas\n\n");

  dynamoth::metrics::Series series(
      {"publishers", "rt_ms_nonrepl", "delivered_pct_nonrepl", "drops_nonrepl",
       "rt_ms_repl_x3", "delivered_pct_repl", "drops_repl"});

  for (int pubs = 100; pubs <= 800; pubs += 100) {
    const RunResult plain = run_point(pubs, /*replicated=*/false, 3000 + pubs);
    const RunResult repl = run_point(pubs, /*replicated=*/true, 4000 + pubs);
    series.add_row({static_cast<double>(pubs), plain.mean_ms, plain.delivered_pct,
                    plain.drops, repl.mean_ms, repl.delivered_pct, repl.drops});
  }
  series.print_table(std::cout);
  series.save_csv("fig4b_all_subscribers.csv");
  std::printf("\n(series saved to fig4b_all_subscribers.csv)\n");
  return 0;
}
