// fig_scale — cohort-mode population sweep: 10^3 .. 10^6 modeled users on
// one machine.
//
// This is the scalability figure for the COHORT SUBSYSTEM itself, not a
// paper figure: it replays the Fig-5-style ramp (10% of the target at t=0,
// linear climb to 100%) at increasing modeled populations and reports what
// it costs to simulate them — wall-clock per simulated second, peak RSS,
// and the exact per-member delivery-latency p99 the cohorts reconstruct.
// Individual clients cap out around 10^4 users; cohorts hold one client per
// occupied tile regardless of population, so the event count grows with
// aggregate channel traffic (O(tiles + publications)), not with members.
//
// scale_population() rescales the resource model with the population (see
// DESIGN.md section 13), so every sweep point drives the same load-ratio
// trajectory and the balancer behaves comparably at every size.
//
// Usage: fig_scale [--smoke] [--full] [--users N] [--shards K]
//   --smoke   10^3 and 10^4 only, shortened ramp (CI)
//   --full    run the 10^6 point at the full 480 s ramp too
//   --users N single sweep point at N modeled users
//   --shards K  run each point under K block-parallel regions (DESIGN.md
//               section 15); K = 1 is the classic path, bit-identical
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "mammoth/experiments.h"
#include "mammoth/sharded_experiment.h"
#include "metrics/series.h"

namespace {

using namespace dynamoth;
namespace exp = mammoth::exp;

/// Peak resident set size in MiB (ru_maxrss is KiB on Linux).
double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct SweepPoint {
  std::size_t users = 0;
  SimTime duration = seconds(480);
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool full = false;
  std::size_t single_users = 0;
  std::size_t shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      single_users = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    }
  }

  // Longer ramps at small N keep the balancer exercised; 10^5 and 10^6 get
  // shorter ramps so the sweep stays a one-machine run (--full restores the
  // full ramp at 10^6).
  std::vector<SweepPoint> sweep;
  if (single_users > 0) {
    sweep.push_back({single_users, seconds(single_users >= 100'000 ? 120 : 480)});
  } else if (smoke) {
    sweep = {{1'000, seconds(120)}, {10'000, seconds(120)}};
  } else {
    sweep = {{1'000, seconds(480)},
             {10'000, seconds(480)},
             {100'000, seconds(240)},
             {1'000'000, full ? seconds(480) : seconds(120)}};
  }

  std::printf("== fig_scale: cohort-mode population sweep ==\n");
  std::printf("   Fig-5-style ramp (10%% -> 100%% of target) at each size\n");
  if (shards > 1) std::printf("   block-parallel: %zu regions\n", shards);
  std::printf("\n");

  metrics::Series series{std::vector<std::string>{
      "users", "sim_s", "wall_s", "wall_ms_per_sim_s", "rss_mib", "events", "publications",
      "member_deliveries", "rt_p99_ms", "delivery_p99_ms", "peak_servers"}};

  for (const SweepPoint& point : sweep) {
    exp::GameExperimentConfig config = exp::default_game_experiment();
    config.seed = 77;
    config.balancer = exp::BalancerKind::kDynamoth;
    const SimTime ramp_start = point.duration / 8;
    config.schedule = {{seconds(0), 120},
                       {ramp_start, 120},
                       {point.duration - point.duration / 8, 1200}};
    config.duration = point.duration;
    config.sample_interval = seconds(10);
    exp::scale_population(config, static_cast<double>(point.users) / 1200.0);

    const auto wall_start = std::chrono::steady_clock::now();
    exp::GameExperimentResult result;
    if (shards > 1) {
      config.game.cohort.enabled = true;
      exp::ShardOptions options;
      options.shards = shards;
      result = std::move(exp::run_sharded_game_experiment(config, options).merged);
    } else {
      result = run_game_experiment(config);
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

    const double sim_s = to_seconds(config.duration);
    const double rt_p99_ms = static_cast<double>(result.rtt_us.percentile(99)) / 1000.0;
    const double dl_p99_ms =
        static_cast<double>(result.delivery_latency_us.percentile(99)) / 1000.0;
    const double rss = peak_rss_mib();
    series.add_row({static_cast<double>(point.users), sim_s, wall_s,
                    1000.0 * wall_s / sim_s, rss, static_cast<double>(result.executed_events),
                    static_cast<double>(result.total_updates),
                    static_cast<double>(result.delivery_latency_us.count()), rt_p99_ms,
                    dl_p99_ms, result.peak_servers});

    std::printf(
        "users %8zu | sim %4.0f s in %7.2f s wall (%7.1f ms/sim-s) | rss %7.1f MiB | "
        "%llu events | rt p99 %6.1f ms | delivery p99 %6.1f ms | peak servers %.0f\n",
        point.users, sim_s, wall_s, 1000.0 * wall_s / sim_s, rss,
        static_cast<unsigned long long>(result.executed_events), rt_p99_ms, dl_p99_ms,
        result.peak_servers);
  }

  series.save_csv("fig_scale.csv");
  std::printf("\n(series saved to fig_scale.csv)\n");
  return 0;
}
