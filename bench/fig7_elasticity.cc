// Figure 7 — Experiment 3: elasticity under a fluctuating population.
//
// Paper setup (V-E): inject ~800 players step by step, remove 600 (down to
// 200), then add a little under 400 more (to almost 600). Figure 7a plots
// players and active servers; Figure 7b the average response time and the
// outgoing message rate, with rebalance markers.
//
// Expected shape: servers are added during ramps (with short response-time
// spikes) and released again after the load drops — with a visible delay,
// because scale-down has lower priority; scale-down itself causes no
// latency spikes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <utility>

#include "mammoth/experiments.h"
#include "mammoth/sharded_experiment.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

int main(int argc, char** argv) {
  using namespace dynamoth;
  namespace exp = mammoth::exp;

  // --users N: replay at N peak players instead of the paper's 800 — cohort
  // mode + resource rescaling keep the elasticity shape (see
  // mammoth::exp::scale_population). Default is bit-identical to before.
  // --shards K: run under K block-parallel regions (DESIGN.md section 15;
  // cohort mode forced on when K > 1). K = 1 is the classic path.
  std::size_t users = 800;
  std::size_t shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      users = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    }
  }
  const double scale = static_cast<double>(users) / 800.0;

  std::printf("== Figure 7: handling a varying number of players ==\n");
  std::printf("   ramp to %zu, drop to %zu, climb back to ~%zu%s\n\n", users,
              static_cast<std::size_t>(200 * scale + 0.5),
              static_cast<std::size_t>(580 * scale + 0.5),
              scale != 1.0 ? " [cohort mode]" : "");

  // Flight recorder on for the whole run: control-plane events (plans,
  // switches, LLA reports, spawns) land in fig7_trace.json; with
  // -DDYNAMOTH_TRACING=ON the per-message hot points appear too.
  obs::trace().set_enabled(true);

  exp::GameExperimentConfig config = exp::default_game_experiment();
  config.seed = 99;
  config.balancer = exp::BalancerKind::kDynamoth;
  config.schedule = {{seconds(0), 50},   {seconds(240), 800}, {seconds(300), 800},
                     {seconds(330), 200}, {seconds(420), 200}, {seconds(540), 580},
                     {seconds(630), 580}};
  config.duration = seconds(630);
  config.sample_interval = seconds(10);
  config.record_metrics_windows = true;
  exp::scale_population(config, scale);
  if (shards > 1) config.game.cohort.enabled = true;

  exp::GameExperimentResult result;
  if (shards > 1) {
    exp::ShardOptions options;
    options.shards = shards;
    result = std::move(run_sharded_game_experiment(config, options).merged);
  } else {
    result = run_game_experiment(config);
  }

  std::printf("-- Fig 7a/7b series --\n");
  result.series.print_table(std::cout);
  result.series.save_csv("fig7_elasticity.csv");

  std::printf("\n-- rebalance audit timeline --\n");
  result.audit.write_timeline(std::cout);
  {
    std::ofstream os("fig7_audit.txt");
    result.audit.write_timeline(os);
  }
  std::size_t scale_downs = 0;
  for (const auto& event : result.events) {
    if (event.kind == core::RebalanceKind::kLowLoad) ++scale_downs;
  }
  std::printf("\npeak servers: %.0f | final servers: %.0f | low-load rebalances: %zu\n",
              result.peak_servers,
              result.series.value(result.series.rows() - 1, result.series.column_index("servers")),
              scale_downs);
  std::printf("overall rt: mean %.1f ms, p99 %.1f ms\n", result.rtt_us.mean() / 1000.0,
              static_cast<double>(result.rtt_us.percentile(99)) / 1000.0);
  std::printf("elastic fleet used %.2f server-hours vs %.2f for a static max fleet\n",
              result.server_hours, result.static_fleet_hours);

  result.metrics.save_windows_csv("fig7_metrics.csv");
  result.metrics.save_json("fig7_metrics.json");
  obs::save_chrome_trace(obs::trace(), "fig7_trace.json");
  std::printf(
      "flight recorder: %llu events recorded (%llu dropped) -> fig7_trace.json "
      "(load in Perfetto / chrome://tracing)\n",
      static_cast<unsigned long long>(obs::trace().recorded()),
      static_cast<unsigned long long>(obs::trace().dropped()));
  std::printf(
      "(series: fig7_elasticity.csv | audit: fig7_audit.txt | metrics: "
      "fig7_metrics.{csv,json})\n");
  return 0;
}
