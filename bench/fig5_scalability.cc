// Figure 5 — Experiment 2: client scalability, Dynamoth vs consistent
// hashing.
//
// Paper setup (V-D): players join over time (~120 up to an attempted 1200),
// each publishing 3 state updates/second on its tile channel; up to 8 Redis
// servers. Figure 5a plots the player ramp, 5b total outgoing messages/s and
// active servers, 5c average response time with rebalance markers.
//
// Expected shape: Dynamoth sustains ~60% more players below the 150 ms
// quality bound than consistent hashing, reuses its server pool before
// spawning, and holds average response time near a low baseline with short
// spikes at rebalances; consistent hashing overloads early because servers
// shed 1/N of their channels regardless of load.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <utility>

#include "mammoth/experiments.h"
#include "mammoth/sharded_experiment.h"

namespace {

using namespace dynamoth;
using mammoth::exp::BalancerKind;
using mammoth::exp::GameExperimentConfig;
using mammoth::exp::GameExperimentResult;

/// --shards K: route through the block-parallel engine (DESIGN.md section
/// 15). K = 1 takes the classic single-threaded path, bit-identical to runs
/// before the knob existed.
GameExperimentResult run_with_shards(const GameExperimentConfig& config, std::size_t shards) {
  if (shards <= 1) return run_game_experiment(config);
  mammoth::exp::ShardOptions options;
  options.shards = shards;
  mammoth::exp::ShardedGameResult result = run_sharded_game_experiment(config, options);
  return std::move(result.merged);
}

GameExperimentConfig base_config() {
  GameExperimentConfig config = mammoth::exp::default_game_experiment();
  config.seed = 77;
  // Time-compressed version of the paper's ramp: 120 players at t=0,
  // linear join up to 1200 attempted players by t=420 s.
  config.schedule = {{seconds(0), 120}, {seconds(60), 120}, {seconds(420), 1200}};
  config.duration = seconds(480);
  config.sample_interval = seconds(10);
  config.record_metrics_windows = true;
  return config;
}

void print_run(const char* name, const GameExperimentResult& result) {
  std::printf("\n-- %s --\n", name);
  result.series.print_table(std::cout);
  std::printf("rebalances: %zu | peak servers: %.0f | max players with rt<=150ms: %.0f\n",
              result.events.size(), result.peak_servers, result.max_players_ok);
  std::printf("overall rt: mean %.1f ms, p50 %.1f ms, p99 %.1f ms | connection drops: %llu\n",
              result.rtt_us.mean() / 1000.0,
              static_cast<double>(result.rtt_us.percentile(50)) / 1000.0,
              static_cast<double>(result.rtt_us.percentile(99)) / 1000.0,
              static_cast<unsigned long long>(result.connection_drops));
}

}  // namespace

int main(int argc, char** argv) {
  // --users N: replay the same experiment with N attempted players instead
  // of the paper's 1200 — cohort mode + resource rescaling keep the figure's
  // shape (see mammoth::exp::scale_population). Default is the paper setup,
  // bit-identical to runs before the knob existed.
  // --shards K: run each experiment under K block-parallel regions (cohort
  // mode required; forced on when K > 1).
  std::size_t users = 1200;
  std::size_t shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      users = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    }
  }
  const double scale = static_cast<double>(users) / 1200.0;

  std::printf("== Figure 5: client scalability — Dynamoth vs consistent hashing ==\n");
  std::printf("   player ramp %zu -> %zu @ 3 updates/s, up to 8 pub/sub servers%s\n",
              static_cast<std::size_t>(120 * scale + 0.5), users,
              scale != 1.0 ? " [cohort mode]" : "");

  GameExperimentConfig dynamoth_config = base_config();
  scale_population(dynamoth_config, scale);
  if (shards > 1) dynamoth_config.game.cohort.enabled = true;
  dynamoth_config.balancer = BalancerKind::kDynamoth;
  const GameExperimentResult dyn = run_with_shards(dynamoth_config, shards);
  print_run("Dynamoth (Fig 5a/5b/5c series)", dyn);
  dyn.series.save_csv("fig5_dynamoth.csv");
  dyn.metrics.save_windows_csv("fig5_dynamoth_metrics.csv");

  std::printf("\n-- Dynamoth rebalance audit timeline --\n");
  dyn.audit.write_timeline(std::cout);

  GameExperimentConfig hash_config = base_config();
  scale_population(hash_config, scale);
  if (shards > 1) hash_config.game.cohort.enabled = true;
  hash_config.balancer = BalancerKind::kConsistentHashing;
  const GameExperimentResult hash = run_with_shards(hash_config, shards);
  print_run("Consistent hashing (Fig 5a/5b/5c series)", hash);
  hash.series.save_csv("fig5_hashing.csv");

  std::printf("\n== Headline (paper: Dynamoth handles ~60%% more players on the same servers) ==\n");
  std::printf("dynamoth  max players below 150 ms: %.0f\n", dyn.max_players_ok);
  std::printf("hashing   max players below 150 ms: %.0f\n", hash.max_players_ok);
  if (hash.max_players_ok > 0) {
    std::printf("improvement: %+.0f%%\n",
                100.0 * (dyn.max_players_ok / hash.max_players_ok - 1.0));
  }
  std::printf("(series saved to fig5_dynamoth.csv / fig5_hashing.csv)\n");
  return 0;
}
