# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/latency_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/pubsub_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/lla_test[1]_include.cmake")
include("/root/repo/build/tests/dispatcher_test[1]_include.cmake")
include("/root/repo/build/tests/balancer_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/mammoth_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/reliability_test[1]_include.cmake")
