file(REMOVE_RECURSE
  "CMakeFiles/balancer_test.dir/core/balancer_base_test.cc.o"
  "CMakeFiles/balancer_test.dir/core/balancer_base_test.cc.o.d"
  "CMakeFiles/balancer_test.dir/core/cloud_test.cc.o"
  "CMakeFiles/balancer_test.dir/core/cloud_test.cc.o.d"
  "CMakeFiles/balancer_test.dir/core/cpu_aware_test.cc.o"
  "CMakeFiles/balancer_test.dir/core/cpu_aware_test.cc.o.d"
  "CMakeFiles/balancer_test.dir/core/load_balancer_test.cc.o"
  "CMakeFiles/balancer_test.dir/core/load_balancer_test.cc.o.d"
  "balancer_test"
  "balancer_test.pdb"
  "balancer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balancer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
