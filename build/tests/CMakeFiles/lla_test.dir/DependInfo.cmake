
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/lla_test.cc" "tests/CMakeFiles/lla_test.dir/core/lla_test.cc.o" "gcc" "tests/CMakeFiles/lla_test.dir/core/lla_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mammoth/CMakeFiles/dyn_mammoth.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/dyn_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/dyn_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dyn_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/dyn_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dyn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/latency/CMakeFiles/dyn_latency.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dyn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dyn_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
