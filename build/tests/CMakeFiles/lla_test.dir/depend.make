# Empty dependencies file for lla_test.
# This may be replaced when dependencies are built.
