file(REMOVE_RECURSE
  "CMakeFiles/lla_test.dir/core/lla_test.cc.o"
  "CMakeFiles/lla_test.dir/core/lla_test.cc.o.d"
  "lla_test"
  "lla_test.pdb"
  "lla_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
