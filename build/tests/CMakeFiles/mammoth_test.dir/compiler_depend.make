# Empty compiler generated dependencies file for mammoth_test.
# This may be replaced when dependencies are built.
