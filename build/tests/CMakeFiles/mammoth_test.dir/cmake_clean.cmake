file(REMOVE_RECURSE
  "CMakeFiles/mammoth_test.dir/mammoth/experiments_test.cc.o"
  "CMakeFiles/mammoth_test.dir/mammoth/experiments_test.cc.o.d"
  "CMakeFiles/mammoth_test.dir/mammoth/player_test.cc.o"
  "CMakeFiles/mammoth_test.dir/mammoth/player_test.cc.o.d"
  "CMakeFiles/mammoth_test.dir/mammoth/world_test.cc.o"
  "CMakeFiles/mammoth_test.dir/mammoth/world_test.cc.o.d"
  "mammoth_test"
  "mammoth_test.pdb"
  "mammoth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mammoth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
