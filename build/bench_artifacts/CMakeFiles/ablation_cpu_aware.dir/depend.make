# Empty dependencies file for ablation_cpu_aware.
# This may be replaced when dependencies are built.
