file(REMOVE_RECURSE
  "../bench/ablation_cpu_aware"
  "../bench/ablation_cpu_aware.pdb"
  "CMakeFiles/ablation_cpu_aware.dir/ablation_cpu_aware.cc.o"
  "CMakeFiles/ablation_cpu_aware.dir/ablation_cpu_aware.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cpu_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
