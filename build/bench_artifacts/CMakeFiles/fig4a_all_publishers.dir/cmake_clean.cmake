file(REMOVE_RECURSE
  "../bench/fig4a_all_publishers"
  "../bench/fig4a_all_publishers.pdb"
  "CMakeFiles/fig4a_all_publishers.dir/fig4a_all_publishers.cc.o"
  "CMakeFiles/fig4a_all_publishers.dir/fig4a_all_publishers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_all_publishers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
