# Empty dependencies file for fig4a_all_publishers.
# This may be replaced when dependencies are built.
