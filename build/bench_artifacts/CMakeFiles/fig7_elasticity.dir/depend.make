# Empty dependencies file for fig7_elasticity.
# This may be replaced when dependencies are built.
