file(REMOVE_RECURSE
  "../bench/fig7_elasticity"
  "../bench/fig7_elasticity.pdb"
  "CMakeFiles/fig7_elasticity.dir/fig7_elasticity.cc.o"
  "CMakeFiles/fig7_elasticity.dir/fig7_elasticity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
