# Empty compiler generated dependencies file for fig4b_all_subscribers.
# This may be replaced when dependencies are built.
