file(REMOVE_RECURSE
  "../bench/fig4b_all_subscribers"
  "../bench/fig4b_all_subscribers.pdb"
  "CMakeFiles/fig4b_all_subscribers.dir/fig4b_all_subscribers.cc.o"
  "CMakeFiles/fig4b_all_subscribers.dir/fig4b_all_subscribers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_all_subscribers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
