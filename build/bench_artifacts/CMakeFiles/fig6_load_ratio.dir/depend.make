# Empty dependencies file for fig6_load_ratio.
# This may be replaced when dependencies are built.
