file(REMOVE_RECURSE
  "../bench/fig6_load_ratio"
  "../bench/fig6_load_ratio.pdb"
  "CMakeFiles/fig6_load_ratio.dir/fig6_load_ratio.cc.o"
  "CMakeFiles/fig6_load_ratio.dir/fig6_load_ratio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_load_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
