file(REMOVE_RECURSE
  "CMakeFiles/reliable_chat.dir/reliable_chat.cpp.o"
  "CMakeFiles/reliable_chat.dir/reliable_chat.cpp.o.d"
  "reliable_chat"
  "reliable_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
