# Empty compiler generated dependencies file for reliable_chat.
# This may be replaced when dependencies are built.
