# Empty compiler generated dependencies file for dyn_common.
# This may be replaced when dependencies are built.
