# Empty dependencies file for dyn_common.
# This may be replaced when dependencies are built.
