file(REMOVE_RECURSE
  "libdyn_common.a"
)
