file(REMOVE_RECURSE
  "CMakeFiles/dyn_common.dir/rng.cc.o"
  "CMakeFiles/dyn_common.dir/rng.cc.o.d"
  "libdyn_common.a"
  "libdyn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
