file(REMOVE_RECURSE
  "libdyn_harness.a"
)
