file(REMOVE_RECURSE
  "CMakeFiles/dyn_harness.dir/cluster.cc.o"
  "CMakeFiles/dyn_harness.dir/cluster.cc.o.d"
  "libdyn_harness.a"
  "libdyn_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyn_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
