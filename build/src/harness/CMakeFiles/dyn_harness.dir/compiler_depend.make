# Empty compiler generated dependencies file for dyn_harness.
# This may be replaced when dependencies are built.
