file(REMOVE_RECURSE
  "CMakeFiles/dyn_latency.dir/latency_model.cc.o"
  "CMakeFiles/dyn_latency.dir/latency_model.cc.o.d"
  "libdyn_latency.a"
  "libdyn_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyn_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
