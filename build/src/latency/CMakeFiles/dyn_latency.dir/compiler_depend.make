# Empty compiler generated dependencies file for dyn_latency.
# This may be replaced when dependencies are built.
