file(REMOVE_RECURSE
  "libdyn_latency.a"
)
