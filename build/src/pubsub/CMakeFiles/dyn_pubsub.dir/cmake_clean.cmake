file(REMOVE_RECURSE
  "CMakeFiles/dyn_pubsub.dir/remote_connection.cc.o"
  "CMakeFiles/dyn_pubsub.dir/remote_connection.cc.o.d"
  "CMakeFiles/dyn_pubsub.dir/server.cc.o"
  "CMakeFiles/dyn_pubsub.dir/server.cc.o.d"
  "libdyn_pubsub.a"
  "libdyn_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyn_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
