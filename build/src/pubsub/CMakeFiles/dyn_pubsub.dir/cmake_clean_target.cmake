file(REMOVE_RECURSE
  "libdyn_pubsub.a"
)
