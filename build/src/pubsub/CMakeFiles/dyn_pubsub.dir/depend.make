# Empty dependencies file for dyn_pubsub.
# This may be replaced when dependencies are built.
