
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pubsub/remote_connection.cc" "src/pubsub/CMakeFiles/dyn_pubsub.dir/remote_connection.cc.o" "gcc" "src/pubsub/CMakeFiles/dyn_pubsub.dir/remote_connection.cc.o.d"
  "/root/repo/src/pubsub/server.cc" "src/pubsub/CMakeFiles/dyn_pubsub.dir/server.cc.o" "gcc" "src/pubsub/CMakeFiles/dyn_pubsub.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dyn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dyn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dyn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/latency/CMakeFiles/dyn_latency.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
