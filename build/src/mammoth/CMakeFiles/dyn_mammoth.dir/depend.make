# Empty dependencies file for dyn_mammoth.
# This may be replaced when dependencies are built.
