file(REMOVE_RECURSE
  "libdyn_mammoth.a"
)
