file(REMOVE_RECURSE
  "CMakeFiles/dyn_mammoth.dir/experiments.cc.o"
  "CMakeFiles/dyn_mammoth.dir/experiments.cc.o.d"
  "CMakeFiles/dyn_mammoth.dir/game.cc.o"
  "CMakeFiles/dyn_mammoth.dir/game.cc.o.d"
  "CMakeFiles/dyn_mammoth.dir/player.cc.o"
  "CMakeFiles/dyn_mammoth.dir/player.cc.o.d"
  "CMakeFiles/dyn_mammoth.dir/world.cc.o"
  "CMakeFiles/dyn_mammoth.dir/world.cc.o.d"
  "libdyn_mammoth.a"
  "libdyn_mammoth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyn_mammoth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
