# Empty dependencies file for dyn_net.
# This may be replaced when dependencies are built.
