file(REMOVE_RECURSE
  "libdyn_net.a"
)
