file(REMOVE_RECURSE
  "CMakeFiles/dyn_net.dir/network.cc.o"
  "CMakeFiles/dyn_net.dir/network.cc.o.d"
  "libdyn_net.a"
  "libdyn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
