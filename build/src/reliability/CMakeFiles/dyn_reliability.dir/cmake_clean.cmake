file(REMOVE_RECURSE
  "CMakeFiles/dyn_reliability.dir/history_store.cc.o"
  "CMakeFiles/dyn_reliability.dir/history_store.cc.o.d"
  "CMakeFiles/dyn_reliability.dir/reliable_subscriber.cc.o"
  "CMakeFiles/dyn_reliability.dir/reliable_subscriber.cc.o.d"
  "CMakeFiles/dyn_reliability.dir/replay_service.cc.o"
  "CMakeFiles/dyn_reliability.dir/replay_service.cc.o.d"
  "libdyn_reliability.a"
  "libdyn_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyn_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
