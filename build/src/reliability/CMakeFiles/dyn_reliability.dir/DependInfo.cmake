
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/history_store.cc" "src/reliability/CMakeFiles/dyn_reliability.dir/history_store.cc.o" "gcc" "src/reliability/CMakeFiles/dyn_reliability.dir/history_store.cc.o.d"
  "/root/repo/src/reliability/reliable_subscriber.cc" "src/reliability/CMakeFiles/dyn_reliability.dir/reliable_subscriber.cc.o" "gcc" "src/reliability/CMakeFiles/dyn_reliability.dir/reliable_subscriber.cc.o.d"
  "/root/repo/src/reliability/replay_service.cc" "src/reliability/CMakeFiles/dyn_reliability.dir/replay_service.cc.o" "gcc" "src/reliability/CMakeFiles/dyn_reliability.dir/replay_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/dyn_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dyn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dyn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/latency/CMakeFiles/dyn_latency.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dyn_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
