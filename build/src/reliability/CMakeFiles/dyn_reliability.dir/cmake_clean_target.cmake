file(REMOVE_RECURSE
  "libdyn_reliability.a"
)
