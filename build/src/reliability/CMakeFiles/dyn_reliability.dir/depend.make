# Empty dependencies file for dyn_reliability.
# This may be replaced when dependencies are built.
