file(REMOVE_RECURSE
  "libdyn_baseline.a"
)
