# Empty dependencies file for dyn_baseline.
# This may be replaced when dependencies are built.
