file(REMOVE_RECURSE
  "CMakeFiles/dyn_baseline.dir/consistent_hash_balancer.cc.o"
  "CMakeFiles/dyn_baseline.dir/consistent_hash_balancer.cc.o.d"
  "libdyn_baseline.a"
  "libdyn_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyn_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
