file(REMOVE_RECURSE
  "libdyn_sim.a"
)
