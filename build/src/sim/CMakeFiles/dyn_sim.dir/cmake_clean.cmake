file(REMOVE_RECURSE
  "CMakeFiles/dyn_sim.dir/simulator.cc.o"
  "CMakeFiles/dyn_sim.dir/simulator.cc.o.d"
  "libdyn_sim.a"
  "libdyn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
