# Empty compiler generated dependencies file for dyn_sim.
# This may be replaced when dependencies are built.
