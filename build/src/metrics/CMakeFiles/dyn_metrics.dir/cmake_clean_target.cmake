file(REMOVE_RECURSE
  "libdyn_metrics.a"
)
