file(REMOVE_RECURSE
  "CMakeFiles/dyn_metrics.dir/histogram.cc.o"
  "CMakeFiles/dyn_metrics.dir/histogram.cc.o.d"
  "CMakeFiles/dyn_metrics.dir/series.cc.o"
  "CMakeFiles/dyn_metrics.dir/series.cc.o.d"
  "libdyn_metrics.a"
  "libdyn_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyn_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
