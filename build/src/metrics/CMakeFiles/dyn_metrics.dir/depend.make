# Empty dependencies file for dyn_metrics.
# This may be replaced when dependencies are built.
