# Empty dependencies file for dyn_core.
# This may be replaced when dependencies are built.
