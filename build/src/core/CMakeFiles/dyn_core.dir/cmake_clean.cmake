file(REMOVE_RECURSE
  "CMakeFiles/dyn_core.dir/balancer_base.cc.o"
  "CMakeFiles/dyn_core.dir/balancer_base.cc.o.d"
  "CMakeFiles/dyn_core.dir/client.cc.o"
  "CMakeFiles/dyn_core.dir/client.cc.o.d"
  "CMakeFiles/dyn_core.dir/cloud.cc.o"
  "CMakeFiles/dyn_core.dir/cloud.cc.o.d"
  "CMakeFiles/dyn_core.dir/consistent_hash.cc.o"
  "CMakeFiles/dyn_core.dir/consistent_hash.cc.o.d"
  "CMakeFiles/dyn_core.dir/dispatcher.cc.o"
  "CMakeFiles/dyn_core.dir/dispatcher.cc.o.d"
  "CMakeFiles/dyn_core.dir/lla.cc.o"
  "CMakeFiles/dyn_core.dir/lla.cc.o.d"
  "CMakeFiles/dyn_core.dir/load_balancer.cc.o"
  "CMakeFiles/dyn_core.dir/load_balancer.cc.o.d"
  "CMakeFiles/dyn_core.dir/plan.cc.o"
  "CMakeFiles/dyn_core.dir/plan.cc.o.d"
  "libdyn_core.a"
  "libdyn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
