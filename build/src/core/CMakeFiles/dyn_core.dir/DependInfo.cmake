
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/balancer_base.cc" "src/core/CMakeFiles/dyn_core.dir/balancer_base.cc.o" "gcc" "src/core/CMakeFiles/dyn_core.dir/balancer_base.cc.o.d"
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/dyn_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/dyn_core.dir/client.cc.o.d"
  "/root/repo/src/core/cloud.cc" "src/core/CMakeFiles/dyn_core.dir/cloud.cc.o" "gcc" "src/core/CMakeFiles/dyn_core.dir/cloud.cc.o.d"
  "/root/repo/src/core/consistent_hash.cc" "src/core/CMakeFiles/dyn_core.dir/consistent_hash.cc.o" "gcc" "src/core/CMakeFiles/dyn_core.dir/consistent_hash.cc.o.d"
  "/root/repo/src/core/dispatcher.cc" "src/core/CMakeFiles/dyn_core.dir/dispatcher.cc.o" "gcc" "src/core/CMakeFiles/dyn_core.dir/dispatcher.cc.o.d"
  "/root/repo/src/core/lla.cc" "src/core/CMakeFiles/dyn_core.dir/lla.cc.o" "gcc" "src/core/CMakeFiles/dyn_core.dir/lla.cc.o.d"
  "/root/repo/src/core/load_balancer.cc" "src/core/CMakeFiles/dyn_core.dir/load_balancer.cc.o" "gcc" "src/core/CMakeFiles/dyn_core.dir/load_balancer.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/core/CMakeFiles/dyn_core.dir/plan.cc.o" "gcc" "src/core/CMakeFiles/dyn_core.dir/plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dyn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dyn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dyn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/dyn_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dyn_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/latency/CMakeFiles/dyn_latency.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
