file(REMOVE_RECURSE
  "libdyn_core.a"
)
