#!/usr/bin/env sh
# Cache-behaviour snapshot of the fan-out hot path.
#
# Runs the BM_Fanout* / BM_MessagePath* microbenchmarks under
# `perf stat -e cache-misses,LLC-load-misses` so the cache-conscious fan-out
# work (flat subscriber sets, SoA channel state, per-destination batching) can
# be judged on hardware counters, not just wall clock. See DESIGN.md section 11
# and the "Fan-out benchmarks" recipe in EXPERIMENTS.md.
#
# Degrades gracefully: where perf(1) is missing, or the kernel refuses the
# events (perf_event_paranoid, seccomp'd CI containers, VMs without PMU
# passthrough), it falls back to a plain benchmark run and still exits 0.
# Usage:
#   BENCH_BIN=build/bench/micro_core tools/perf_stat.sh
#   cmake --build build --target perf-stat
set -eu

BENCH_BIN="${BENCH_BIN:-build/bench/micro_core}"
FILTER="${FILTER:-BM_Fanout|BM_MessagePath}"
EVENTS="${EVENTS:-cache-misses,LLC-load-misses}"

if [ ! -x "$BENCH_BIN" ]; then
  echo "perf_stat.sh: benchmark binary not found: $BENCH_BIN" >&2
  echo "perf_stat.sh: build it first (cmake --build build --target micro_core)" >&2
  exit 1
fi

# Probe that perf exists AND can actually count on this machine: `perf stat
# true` fails fast under perf_event_paranoid / missing PMU, where merely
# checking `command -v perf` would not.
if command -v perf >/dev/null 2>&1 && perf stat -e "$EVENTS" -- true >/dev/null 2>&1; then
  exec perf stat -e "$EVENTS" -- "$BENCH_BIN" "--benchmark_filter=$FILTER"
fi

echo "perf_stat.sh: perf events unavailable here; running benchmarks without counters"
exec "$BENCH_BIN" "--benchmark_filter=$FILTER"
