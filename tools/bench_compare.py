#!/usr/bin/env python3
"""Compare a fresh google-benchmark JSON run against a checked-in baseline.

Usage:
    tools/bench_compare.py BASELINE.json FRESH.json [--max-regression 0.40]
        [--override NAME=FRAC ...]

For every benchmark present in both files the throughput (items_per_second
when reported, otherwise 1/real_time) is compared. The script exits non-zero
if any benchmark's throughput fell below baseline * (1 - max_regression).

The default threshold is deliberately loose (40%): shared CI runners are
noisy and heterogeneous, so the gate is meant to catch structural
regressions (an accidental per-message allocation, a hot path falling off
its fast branch), not single-digit jitter. Local runs on a quiet machine can
tighten it with --max-regression.

Individual benchmarks with different noise profiles (wall-clock-dominated
parallel runs, sub-microsecond micro-benches) can carry their own threshold
via --override, repeatable, matched by exact name first and then by prefix:

    --override BM_ParallelEpoch=0.60 --override 'BM_Fanout/'=0.25

Even when every benchmark passes, the worst ratio is printed so a slow drift
across green runs stays visible in CI logs.
"""

from __future__ import annotations

import argparse
import json
import sys


def throughput(entry: dict) -> float | None:
    """Benchmark throughput in 'bigger is better' units, or None to skip."""
    if entry.get("run_type") == "aggregate":
        return None
    if "items_per_second" in entry:
        return float(entry["items_per_second"])
    real = float(entry.get("real_time", 0.0))
    return 1.0 / real if real > 0 else None


def load(path: str) -> dict[str, float]:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    out: dict[str, float] = {}
    for entry in data.get("benchmarks", []):
        value = throughput(entry)
        if value is not None:
            out[entry["name"]] = value
    return out


def parse_override(spec: str) -> tuple[str, float]:
    name, sep, frac = spec.rpartition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(f"expected NAME=FRAC, got {spec!r}")
    try:
        value = float(frac)
    except ValueError as err:
        raise argparse.ArgumentTypeError(f"bad fraction in {spec!r}") from err
    if not 0.0 <= value < 1.0:
        raise argparse.ArgumentTypeError(f"fraction must be in [0, 1), got {spec!r}")
    return name, value


def tolerance_for(name: str, default: float, overrides: list[tuple[str, float]]) -> float:
    """Exact-name override wins; otherwise the longest matching prefix."""
    best: tuple[int, float] | None = None
    for pattern, frac in overrides:
        if name == pattern:
            return frac
        if name.startswith(pattern) and (best is None or len(pattern) > best[0]):
            best = (len(pattern), frac)
    return best[1] if best is not None else default


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("fresh", help="freshly generated JSON")
    parser.add_argument("--max-regression", type=float, default=0.40,
                        help="allowed fractional throughput drop (default 0.40)")
    parser.add_argument("--override", type=parse_override, action="append", default=[],
                        metavar="NAME=FRAC", dest="overrides",
                        help="per-benchmark allowed drop; exact name or prefix, repeatable")
    args = parser.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    if not fresh:
        print(f"error: no benchmarks found in {args.fresh}", file=sys.stderr)
        return 2

    failures = []
    worst: tuple[str, float] | None = None
    width = max((len(n) for n in fresh), default=0)
    for name in sorted(fresh):
        if name not in base:
            print(f"{name:<{width}}  NEW (no baseline entry)")
            continue
        ratio = fresh[name] / base[name]
        if worst is None or ratio < worst[1]:
            worst = (name, ratio)
        allowed = tolerance_for(name, args.max_regression, args.overrides)
        status = "ok"
        if ratio < 1.0 - allowed:
            status = "REGRESSION"
            failures.append((name, ratio, allowed))
        elif allowed != args.max_regression:
            status = f"ok (tolerance {allowed:.0%})"
        print(f"{name:<{width}}  baseline={base[name]:14.1f}  fresh={fresh[name]:14.1f}  "
              f"ratio={ratio:5.2f}x  {status}")
    for name in sorted(set(base) - set(fresh)):
        print(f"{name:<{width}}  MISSING from fresh run")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed past their tolerance "
              f"vs {args.baseline}:", file=sys.stderr)
        for name, ratio, allowed in failures:
            print(f"  {name}: {ratio:.2f}x of baseline (allowed {1.0 - allowed:.2f}x)",
                  file=sys.stderr)
        return 1
    compared = len(set(fresh) & set(base))
    print(f"\nall {compared} compared benchmarks within tolerance "
          f"(default {args.max_regression:.0%})")
    if worst is not None:
        print(f"worst: {worst[0]} at {worst[1]:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
