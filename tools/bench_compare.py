#!/usr/bin/env python3
"""Compare a fresh google-benchmark JSON run against a checked-in baseline.

Usage:
    tools/bench_compare.py BASELINE.json FRESH.json [--max-regression 0.40]

For every benchmark present in both files the throughput (items_per_second
when reported, otherwise 1/real_time) is compared. The script exits non-zero
if any benchmark's throughput fell below baseline * (1 - max_regression).

The default threshold is deliberately loose (40%): shared CI runners are
noisy and heterogeneous, so the gate is meant to catch structural
regressions (an accidental per-message allocation, a hot path falling off
its fast branch), not single-digit jitter. Local runs on a quiet machine can
tighten it with --max-regression.
"""

from __future__ import annotations

import argparse
import json
import sys


def throughput(entry: dict) -> float | None:
    """Benchmark throughput in 'bigger is better' units, or None to skip."""
    if entry.get("run_type") == "aggregate":
        return None
    if "items_per_second" in entry:
        return float(entry["items_per_second"])
    real = float(entry.get("real_time", 0.0))
    return 1.0 / real if real > 0 else None


def load(path: str) -> dict[str, float]:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    out: dict[str, float] = {}
    for entry in data.get("benchmarks", []):
        value = throughput(entry)
        if value is not None:
            out[entry["name"]] = value
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("fresh", help="freshly generated JSON")
    parser.add_argument("--max-regression", type=float, default=0.40,
                        help="allowed fractional throughput drop (default 0.40)")
    args = parser.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    if not fresh:
        print(f"error: no benchmarks found in {args.fresh}", file=sys.stderr)
        return 2

    failures = []
    width = max((len(n) for n in fresh), default=0)
    for name in sorted(fresh):
        if name not in base:
            print(f"{name:<{width}}  NEW (no baseline entry)")
            continue
        ratio = fresh[name] / base[name]
        status = "ok"
        if ratio < 1.0 - args.max_regression:
            status = "REGRESSION"
            failures.append((name, ratio))
        print(f"{name:<{width}}  baseline={base[name]:14.1f}  fresh={fresh[name]:14.1f}  "
              f"ratio={ratio:5.2f}x  {status}")
    for name in sorted(set(base) - set(fresh)):
        print(f"{name:<{width}}  MISSING from fresh run")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed more than "
              f"{args.max_regression:.0%} vs {args.baseline}:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x of baseline", file=sys.stderr)
        return 1
    print(f"\nall {len(fresh)} benchmarks within {args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
